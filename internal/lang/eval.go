package lang

import (
	"repro/internal/expr"
	"repro/internal/registry"
)

// This file is the pluggable evaluation API. The machine (and the live and
// net backends) no longer call Flatten/Resume on ASTs directly: they pick an
// Evaluator by name, compile each submitted program once at Open/admission
// time, and drive the compiled form. Two evaluators register here:
//
//	interp   — the tree-walking partial reducer (the reference semantics)
//	compiled — a register-bytecode VM (compile.go / vm.go)
//
// Every evaluator must preserve the partial-reduction contract exactly:
// the same Outcome shape, the same Demands order, the same Steps counts,
// and the same hole/fill semantics on Resume — so event traces, golden
// fingerprints, and EXPERIMENTS.md are byte-identical whichever evaluator
// runs. FuzzCompiledVsInterp and the golden-trace tests pin this.

// TaskState is the opaque per-task evaluation state an EvalProgram threads
// between passes: the blocked residual of a task plus whatever bookkeeping
// the evaluator keeps alongside it. A nil TaskState means "no pass has run
// yet" — the machine's cue to call Flatten instead of Resume — so blocked
// states are always non-nil.
type TaskState = any

// Evaluator turns validated programs into executable form. Implementations
// are stateless handles (safe for concurrent use) and may memoize
// compilation by program identity: programs are immutable once built.
type Evaluator interface {
	// Name is the registry key ("interp", "compiled").
	Name() string
	// Compile lowers a validated program. It is called once per program at
	// Open/admission time, never on the per-task hot path.
	Compile(p *Program) (EvalProgram, error)
}

// EvalProgram is one compiled program: the per-task evaluation entry points
// the machine drives. Implementations must be safe for concurrent use by
// independent tasks (the live and net backends evaluate on real threads);
// the TaskState values they return are single-task and not shared.
type EvalProgram interface {
	// Flatten runs the first reduction pass of fn(args): reduce until
	// blocked on function applications, which become Demands. nextID is the
	// task's demand counter (persists across passes; determinacy makes hole
	// IDs identical across re-executions of the same packet). The returned
	// TaskState is nil when the Outcome is Done.
	Flatten(fn string, args []expr.Value, nextID *int) (Outcome, TaskState, error)
	// Resume fills holes in a blocked task's state and reduces again.
	// Unfilled holes remain blocked without re-demanding.
	Resume(st TaskState, fills map[int]expr.Value, nextID *int) (Outcome, TaskState, error)
	// RootState is the state of a pseudo-task blocked on a single bare hole
	// — the super-root that demands a submitted request's root application
	// and resumes when its answer arrives.
	RootState(holeID int) TaskState
}

// DefaultEvaluator is the evaluator the machine uses when none is named.
const DefaultEvaluator = "interp"

// evaluators is the evaluator registry, mirroring core.Backends() and
// recovery.Names(): sorted names, lookup errors that enumerate the
// registered set, flag help derived from the same list.
var evaluators = registry.New[Evaluator]("lang", "evaluator")

func init() {
	evaluators.MustRegister("interp", interpEvaluator{})
	evaluators.MustRegister("compiled", newVMEvaluator())
}

// Evaluators lists the registered evaluator names in sorted order.
func Evaluators() []string { return evaluators.Names() }

// KnownEvaluator reports whether name is a registered evaluator.
func KnownEvaluator(name string) bool { return evaluators.Known(name) }

// EvaluatorByName resolves a registered evaluator; the error text lists the
// registered names so callers can surface it verbatim.
func EvaluatorByName(name string) (Evaluator, error) { return evaluators.Get(name) }

// EvaluatorHelp renders the evaluator vocabulary for CLI flag help.
func EvaluatorHelp() string { return evaluators.FlagHelp() }

// --- interp: the tree-walking reference evaluator ---

// interpEvaluator adapts the existing tree-walking partial reducer to the
// Evaluator API. "Compilation" is the identity: the compiled form holds the
// program and the TaskState is the residual expression itself.
type interpEvaluator struct{}

// Name implements Evaluator.
func (interpEvaluator) Name() string { return "interp" }

// Compile implements Evaluator.
func (interpEvaluator) Compile(p *Program) (EvalProgram, error) {
	return interpProgram{prog: p}, nil
}

// interpProgram is a program under the tree-walker.
type interpProgram struct{ prog *Program }

// Flatten implements EvalProgram: instantiate the definition body and run
// the free-function Flatten over the AST.
func (ip interpProgram) Flatten(fn string, args []expr.Value, nextID *int) (Outcome, TaskState, error) {
	body, err := ip.prog.Instantiate(fn, args)
	if err != nil {
		return Outcome{}, nil, err
	}
	out, err := Flatten(ip.prog, body, nextID)
	if err != nil || out.Done {
		return out, nil, err
	}
	return out, out.Residual, nil
}

// Resume implements EvalProgram.
func (ip interpProgram) Resume(st TaskState, fills map[int]expr.Value, nextID *int) (Outcome, TaskState, error) {
	out, err := Resume(ip.prog, st.(expr.Expr), fills, nextID)
	if err != nil || out.Done {
		return out, nil, err
	}
	return out, out.Residual, nil
}

// RootState implements EvalProgram: a bare hole expression.
func (ip interpProgram) RootState(holeID int) TaskState { return expr.Hole{ID: holeID} }
