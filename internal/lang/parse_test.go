package lang

import (
	"strings"
	"testing"

	"repro/internal/expr"
)

func evalSrc(t *testing.T, src, fn string, args ...expr.Value) expr.Value {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	v, err := RefEval(p, fn, args)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return v
}

func TestParseFib(t *testing.T) {
	src := `
		# the canonical example
		fn fib(n) = if n < 2 then n else fib(n-1) + fib(n-2)
	`
	v := evalSrc(t, src, "fib", expr.VInt(10))
	if !v.Equal(expr.VInt(55)) {
		t.Fatalf("fib(10) = %v", v)
	}
}

func TestParsedMatchesBuiltinPrograms(t *testing.T) {
	src := `
		fn fib(n) = if n < 2 then n else fib(n-1) + fib(n-2)
		fn tak(x, y, z) =
			if y < x then tak(tak(x-1, y, z), tak(y-1, z, x), tak(z-1, x, y))
			else z
	`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n < 12; n++ {
		got, err := RefEval(p, "fib", []expr.Value{expr.VInt(n)})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := RefEval(Fib(), "fib", []expr.Value{expr.VInt(n)})
		if !got.Equal(want) {
			t.Fatalf("parsed fib(%d) = %v, builtin %v", n, got, want)
		}
	}
	got, err := RefEval(p, "tak", []expr.Value{expr.VInt(7), expr.VInt(4), expr.VInt(2)})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RefEval(Tak(), "tak", []expr.Value{expr.VInt(7), expr.VInt(4), expr.VInt(2)})
	if !got.Equal(want) {
		t.Fatalf("parsed tak = %v, builtin %v", got, want)
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"fn f() = 2 + 3 * 4", 14},
		{"fn f() = (2 + 3) * 4", 20},
		{"fn f() = 10 - 3 - 2", 5}, // left associative
		{"fn f() = 20 / 2 / 5", 2}, // left associative
		{"fn f() = -3 + 5", 2},     // unary minus
		{"fn f() = 7 % 4 + 1", 4},  // mul level binds tighter
		{"fn f() = if 1 < 2 then 1 else 0", 1},
		{"fn f() = if 1 < 2 && 3 > 4 then 1 else 0", 0},
		{"fn f() = if 1 == 1 || 3 > 4 then 1 else 0", 1},
		{"fn f() = let x = 3 in x * x", 9},
		{"fn f() = let x = 2 in let y = x + 1 in x * y", 6},
	}
	for _, tc := range cases {
		v := evalSrc(t, tc.src, "f")
		if !v.Equal(expr.VInt(tc.want)) {
			t.Errorf("%s = %v, want %d", tc.src, v, tc.want)
		}
	}
}

func TestParseLists(t *testing.T) {
	cases := []struct {
		src  string
		want expr.Value
	}{
		{"fn f() = [1, 2, 3]", expr.IntList(1, 2, 3)},
		{"fn f() = []", expr.VList{}},
		{"fn f() = 0 : [1, 2]", expr.IntList(0, 1, 2)},
		{"fn f() = 1 : 2 : nil", expr.IntList(1, 2)},
		{"fn f() = head([7, 8])", expr.VInt(7)},
		{"fn f() = tail([7, 8])", expr.IntList(8)},
		{"fn f() = len([1, 2, 3, 4])", expr.VInt(4)},
		{"fn f() = append([1], [2, 3])", expr.IntList(1, 2, 3)},
		{"fn f() = if isnil([]) then 1 else 0", expr.VInt(1)},
	}
	for _, tc := range cases {
		v := evalSrc(t, tc.src, "f")
		if !v.Equal(tc.want) {
			t.Errorf("%s = %v, want %v", tc.src, v, tc.want)
		}
	}
}

func TestParseBoolAndStrings(t *testing.T) {
	v := evalSrc(t, `fn f() = if true && !false then "yes" else "no"`, "f")
	if !v.Equal(expr.VStr("yes")) {
		t.Fatalf("got %v", v)
	}
	v = evalSrc(t, `fn f() = "a\nb"`, "f")
	if !v.Equal(expr.VStr("a\nb")) {
		t.Fatalf("escape handling: %v", v)
	}
}

func TestParsePrimitivesVsCalls(t *testing.T) {
	src := `
		fn double(x) = x * 2
		fn f() = double(abs(-5)) + min(3, 9) + max(1, 0)
	`
	v := evalSrc(t, src, "f")
	if !v.Equal(expr.VInt(14)) {
		t.Fatalf("got %v, want 14", v)
	}
}

func TestParseMultilineMergeSort(t *testing.T) {
	src := `
		// list split-sort-merge, exercising every list primitive
		fn msort(xs) =
			if len(xs) <= 1 then xs
			else let n = len(xs) / 2 in
				merge(msort(take(n, xs)), msort(drop(n, xs)))
		fn take(n, xs) = if n <= 0 || isnil(xs) then [] else head(xs) : take(n-1, tail(xs))
		fn drop(n, xs) = if n <= 0 || isnil(xs) then xs else drop(n-1, tail(xs))
		fn merge(a, b) =
			if isnil(a) then b
			else if isnil(b) then a
			else if head(a) <= head(b) then head(a) : merge(tail(a), b)
			else head(b) : merge(a, tail(b))
	`
	v := evalSrc(t, src, "msort", expr.IntList(3, 1, 4, 1, 5, 9, 2, 6))
	if !v.Equal(expr.IntList(1, 1, 2, 3, 4, 5, 6, 9)) {
		t.Fatalf("msort = %v", v)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantErr string
	}{
		{"", "no function definitions"},
		{"fib(n) = n", `expected "fn"`},
		{"fn = 1", "function name"},
		{"fn f( = 1", "parameter name"},
		{"fn f() 1", `expected "="`},
		{"fn f() = if 1 then 2", `expected "else"`},
		{"fn f() = let x 3 in x", `expected "="`},
		{"fn f() = let x = 3 x", `expected "in"`},
		{"fn f() = (1 + 2", `expected ")"`},
		{"fn f() = [1, 2", `expected`},
		{"fn f() = @", "unexpected character"},
		{`fn f() = "abc`, "unterminated string"},
		{"fn f() = g(1)", "undefined function"}, // validation error
		{"fn f(x) = y", "unbound variable"},     // validation error
		{"fn f() = fn", "keyword"},
		{"fn f(x, x) = x", "duplicate parameter"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%q: parse succeeded, want error containing %q", tc.src, tc.wantErr)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%q: error %q does not contain %q", tc.src, err, tc.wantErr)
		}
	}
}

func TestParseRunsOnMachineViaDriver(t *testing.T) {
	// A parsed program must behave identically through the flatten driver.
	src := `
		fn sumto(n) = if n <= 0 then 0 else n + sumto(n - 1)
		fn main() = sumto(20) + fibp(8)
		fn fibp(n) = if n < 2 then n else fibp(n-1) + fibp(n-2)
	`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RefEval(p, "main", nil)
	if err != nil {
		t.Fatal(err)
	}
	got := driveCall(t, p, "main", nil, 0)
	if !got.Equal(want) {
		t.Fatalf("driver %v, ref %v", got, want)
	}
	if !want.Equal(expr.VInt(210 + 21)) {
		t.Fatalf("sumto(20)+fibp(8) = %v", want)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic on bad input")
		}
	}()
	MustParse("fn f( = broken")
}
