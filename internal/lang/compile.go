package lang

import (
	"fmt"

	"repro/internal/expr"
)

// This file lowers a validated Program to the flat per-function form the
// bytecode VM (vm.go) executes. Compilation happens once per program at
// Open/admission time; after it, the per-task hot path touches no maps and
// no AST nodes — variables are environment-slot loads, primitives are
// pre-resolved operator structs, and call targets are interned names.
//
// The lowering is deliberately shape-preserving: one cnode per AST node,
// children by index into the function's flat node slice. That is what makes
// the VM's step accounting provably identical to the tree-walker's (see the
// equivalence argument in ARCHITECTURE.md): the tree-walker charges one step
// per reduce() invocation per node visited, and the VM charges one step per
// cnode visited on exactly the same traversal.

// cop is a compiled-node opcode.
type cop uint8

const (
	cLit   cop = iota // load consts[arg]
	cVar              // load env[arg] (a parameter or committed let slot)
	cPrim             // strict primitive: evaluate kids, run prim
	cIf               // kids = cond, then, else; branches non-strict
	cLet              // write env[arg] from kids[0], then evaluate kids[1]
	cApply            // demand site: evaluate kids, spawn child task
)

// cnode is one compiled expression node.
type cnode struct {
	op   cop
	arg  int32     // cLit: consts index; cVar/cLet: env slot; else unused
	name string    // cVar: source name (errors); cApply: target function
	prim Primitive // cPrim: the resolved operator (Fn nil = unknown op)
	kids []int32   // child node indices, in source order
}

// cfunc is one compiled function definition.
type cfunc struct {
	name   string
	params int
	nodes  []cnode      // flat; children precede parents
	consts []expr.Value // cLit pool
	root   int32        // body node index
	nslots int          // env size: params first, then one slot per Let
	slots  []string     // slot -> source name, for error messages
}

// cprog is a compiled program: the VM-executable form of a lang.Program.
type cprog struct {
	prog  *Program // source identity, for RefEval cross-checks and errors
	funcs map[string]*cfunc
}

// compileProgram lowers every function of a validated program.
func compileProgram(p *Program) (*cprog, error) {
	cp := &cprog{prog: p, funcs: make(map[string]*cfunc, len(p.Names()))}
	for _, name := range p.Names() {
		d, _ := p.Func(name)
		cf, err := compileFunc(d)
		if err != nil {
			return nil, err
		}
		cp.funcs[name] = cf
	}
	return cp, nil
}

// scopeEntry is one lexically visible binding during compilation.
type scopeEntry struct {
	name string
	slot int32
}

// compiler lowers one function body.
type compiler struct {
	f     *cfunc
	scope []scopeEntry // innermost binding last; shadowing = later entry wins
}

// compileFunc lowers one definition. Parameters take env slots 0..n-1; every
// Let binder gets its own fresh slot (never reused), so one persistent
// per-task env array works across passes: a slot is written at most once per
// task, exactly when the tree-walker would have substituted the value.
func compileFunc(d FuncDef) (*cfunc, error) {
	c := &compiler{f: &cfunc{name: d.Name, params: len(d.Params)}}
	for i, p := range d.Params {
		c.scope = append(c.scope, scopeEntry{name: p, slot: int32(i)})
		c.f.slots = append(c.f.slots, p)
	}
	c.f.nslots = len(d.Params)
	root, err := c.lower(d.Body)
	if err != nil {
		return nil, err
	}
	c.f.root = root
	return c.f, nil
}

// lower emits the nodes for e (children first) and returns e's node index.
func (c *compiler) lower(e expr.Expr) (int32, error) {
	switch n := e.(type) {
	case expr.Lit:
		idx := int32(len(c.f.consts))
		c.f.consts = append(c.f.consts, n.V)
		return c.emit(cnode{op: cLit, arg: idx}), nil
	case expr.Var:
		// Resolve innermost-first so shadowing works; an unbound name
		// compiles to a poisoned slot that fails at evaluation time with the
		// tree-walker's exact error (Validate rejects it anyway).
		for i := len(c.scope) - 1; i >= 0; i-- {
			if c.scope[i].name == n.Name {
				return c.emit(cnode{op: cVar, arg: c.scope[i].slot, name: n.Name}), nil
			}
		}
		return c.emit(cnode{op: cVar, arg: -1, name: n.Name}), nil
	case expr.Prim:
		kids, err := c.lowerAll(n.Args)
		if err != nil {
			return 0, err
		}
		// An unknown operator keeps prim.Fn nil and fails at evaluation
		// time, matching the tree-walker's lazy lookup: a program whose bad
		// node is never reached still runs.
		p, _ := LookupPrim(n.Op)
		p.Name = n.Op
		return c.emit(cnode{op: cPrim, name: n.Op, prim: p, kids: kids}), nil
	case expr.If:
		kids, err := c.lowerAll([]expr.Expr{n.Cond, n.Then, n.Else})
		if err != nil {
			return 0, err
		}
		return c.emit(cnode{op: cIf, kids: kids}), nil
	case expr.Let:
		bind, err := c.lower(n.Bind)
		if err != nil {
			return 0, err
		}
		slot := int32(c.f.nslots)
		c.f.nslots++
		c.f.slots = append(c.f.slots, n.Name)
		c.scope = append(c.scope, scopeEntry{name: n.Name, slot: slot})
		body, err := c.lower(n.Body)
		c.scope = c.scope[:len(c.scope)-1]
		if err != nil {
			return 0, err
		}
		return c.emit(cnode{op: cLet, arg: slot, name: n.Name, kids: []int32{bind, body}}), nil
	case expr.Apply:
		kids, err := c.lowerAll(n.Args)
		if err != nil {
			return 0, err
		}
		return c.emit(cnode{op: cApply, name: n.Fn, kids: kids}), nil
	case expr.Hole:
		// Validate rejects holes in source programs; nothing to lower.
		return 0, fmt.Errorf("%w: hole in source program", ErrEval)
	default:
		return 0, fmt.Errorf("%w: unknown node %T", ErrEval, e)
	}
}

// lowerAll lowers an argument list in source order.
func (c *compiler) lowerAll(args []expr.Expr) ([]int32, error) {
	kids := make([]int32, len(args))
	for i, a := range args {
		k, err := c.lower(a)
		if err != nil {
			return nil, err
		}
		kids[i] = k
	}
	return kids, nil
}

// emit appends a node and returns its index.
func (c *compiler) emit(n cnode) int32 {
	c.f.nodes = append(c.f.nodes, n)
	return int32(len(c.f.nodes) - 1)
}
