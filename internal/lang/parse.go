package lang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/expr"
)

// Parse reads a program in the concrete syntax used by cmd/apsim:
//
//	fn fib(n) = if n < 2 then n else fib(n-1) + fib(n-2)
//	fn main() = fib(16)
//
// Grammar (precedence climbing, loosest first):
//
//	program  := { "fn" ident "(" [params] ")" "=" expr }
//	expr     := ifexpr | letexpr | or
//	ifexpr   := "if" expr "then" expr "else" expr
//	letexpr  := "let" ident "=" expr "in" expr
//	or       := and { "||" and }
//	and      := cmp { "&&" cmp }
//	cmp      := add [ ("=="|"!="|"<"|"<="|">"|">=") add ]
//	add      := mul { ("+"|"-") mul }
//	mul      := unary { ("*"|"/"|"%") unary }
//	unary    := "-" unary | "!" unary | postfix
//	postfix  := atom { ":" postfix }          (cons, right associative)
//	atom     := int | "true" | "false" | string | "[" [expr {"," expr}] "]"
//	          | ident [ "(" [args] ")" ] | "(" expr ")"
//
// Identifiers applied with parentheses are primitive calls when the name is
// a known primitive (head, tail, isnil, len, append, abs, min, max, not,
// cons, unit) and user-function calls otherwise. Comments run from "#" or
// "//" to end of line.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var defs []FuncDef
	for !p.atEOF() {
		d, err := p.parseFn()
		if err != nil {
			return nil, err
		}
		defs = append(defs, d)
	}
	if len(defs) == 0 {
		return nil, fmt.Errorf("lang: parse: no function definitions")
	}
	return NewProgram(defs...)
}

// MustParse panics on error; for tests and embedded programs.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// --- lexer ---

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkInt
	tkString
	tkPunct // operators and delimiters
)

type token struct {
	kind tokKind
	text string
	line int
}

func (t token) String() string {
	if t.kind == tkEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// puncts are matched longest-first.
var puncts = []string{
	"==", "!=", "<=", ">=", "&&", "||",
	"(", ")", "[", "]", ",", "+", "-", "*", "/", "%", "<", ">", "=", "!", ":",
}

func lex(src string) ([]token, error) {
	var out []token
	line := 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			i++
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			out = append(out, token{tkInt, src[i:j], line})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			out = append(out, token{tkIdent, src[i:j], line})
			i = j
		case c == '"':
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != '"' {
				if src[j] == '\\' && j+1 < len(src) {
					j++
					switch src[j] {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					default:
						sb.WriteByte(src[j])
					}
				} else {
					sb.WriteByte(src[j])
				}
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("lang: parse: line %d: unterminated string", line)
			}
			out = append(out, token{tkString, sb.String(), line})
			i = j + 1
		default:
			matched := false
			for _, p := range puncts {
				if strings.HasPrefix(src[i:], p) {
					out = append(out, token{tkPunct, p, line})
					i += len(p)
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("lang: parse: line %d: unexpected character %q", line, c)
			}
		}
	}
	out = append(out, token{kind: tkEOF, line: line})
	return out, nil
}

// --- parser ---

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tkEOF }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("lang: parse: line %d: %s", p.peek().line, fmt.Sprintf(format, args...))
}

// accept consumes the token if it matches exactly.
func (p *parser) accept(kind tokKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) error {
	if !p.accept(kind, text) {
		return p.errf("expected %q, found %s", text, p.peek())
	}
	return nil
}

func (p *parser) parseFn() (FuncDef, error) {
	if !p.accept(tkIdent, "fn") {
		return FuncDef{}, p.errf("expected \"fn\", found %s", p.peek())
	}
	name := p.peek()
	if name.kind != tkIdent {
		return FuncDef{}, p.errf("expected function name, found %s", name)
	}
	p.next()
	if err := p.expect(tkPunct, "("); err != nil {
		return FuncDef{}, err
	}
	var params []string
	for !p.accept(tkPunct, ")") {
		if len(params) > 0 {
			if err := p.expect(tkPunct, ","); err != nil {
				return FuncDef{}, err
			}
		}
		t := p.peek()
		if t.kind != tkIdent {
			return FuncDef{}, p.errf("expected parameter name, found %s", t)
		}
		params = append(params, t.text)
		p.next()
	}
	if err := p.expect(tkPunct, "="); err != nil {
		return FuncDef{}, err
	}
	body, err := p.parseExpr()
	if err != nil {
		return FuncDef{}, err
	}
	return FuncDef{Name: name.text, Params: params, Body: body}, nil
}

func (p *parser) parseExpr() (expr.Expr, error) {
	switch {
	case p.accept(tkIdent, "if"):
		c, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tkIdent, "then") {
			return nil, p.errf("expected \"then\", found %s", p.peek())
		}
		t, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tkIdent, "else") {
			return nil, p.errf("expected \"else\", found %s", p.peek())
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return expr.Cond(c, t, e), nil
	case p.accept(tkIdent, "let"):
		name := p.peek()
		if name.kind != tkIdent {
			return nil, p.errf("expected binding name, found %s", name)
		}
		p.next()
		if err := p.expect(tkPunct, "="); err != nil {
			return nil, err
		}
		bind, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if !p.accept(tkIdent, "in") {
			return nil, p.errf("expected \"in\", found %s", p.peek())
		}
		body, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return expr.LetIn(name.text, bind, body), nil
	default:
		return p.parseOr()
	}
}

func (p *parser) parseOr() (expr.Expr, error) {
	lhs, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkPunct, "||") {
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lhs = expr.Op("or", lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	lhs, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.accept(tkPunct, "&&") {
		rhs, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		lhs = expr.Op("and", lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) parseCmp() (expr.Expr, error) {
	lhs, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"==", "!=", "<=", ">=", "<", ">"} {
		if p.accept(tkPunct, op) {
			rhs, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.Op(op, lhs, rhs), nil
		}
	}
	return lhs, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	lhs, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkPunct, "+"):
			rhs, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			lhs = expr.Op("+", lhs, rhs)
		case p.accept(tkPunct, "-"):
			rhs, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			lhs = expr.Op("-", lhs, rhs)
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkPunct, "*"):
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Op("*", lhs, rhs)
		case p.accept(tkPunct, "/"):
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Op("/", lhs, rhs)
		case p.accept(tkPunct, "%"):
			rhs, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			lhs = expr.Op("%", lhs, rhs)
		default:
			return lhs, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tkPunct, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Op("neg", e), nil
	}
	if p.accept(tkPunct, "!") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return expr.Op("not", e), nil
	}
	return p.parseCons()
}

// parseCons handles the right-associative list constructor `h : t`.
func (p *parser) parseCons() (expr.Expr, error) {
	head, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	if p.accept(tkPunct, ":") {
		tail, err := p.parseCons()
		if err != nil {
			return nil, err
		}
		return expr.Op("cons", head, tail), nil
	}
	return head, nil
}

func (p *parser) parseAtom() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tkInt:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return expr.Int(v), nil
	case t.kind == tkString:
		p.next()
		return expr.Str(t.text), nil
	case t.kind == tkPunct && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tkPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tkPunct && t.text == "[":
		p.next()
		var elems []expr.Expr
		for !p.accept(tkPunct, "]") {
			if len(elems) > 0 {
				if err := p.expect(tkPunct, ","); err != nil {
					return nil, err
				}
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
		}
		// Desugar [a, b, c] to cons chains ending in nil.
		out := expr.Nil()
		for i := len(elems) - 1; i >= 0; i-- {
			out = expr.Op("cons", elems[i], out)
		}
		return out, nil
	case t.kind == tkIdent:
		p.next()
		switch t.text {
		case "true":
			return expr.Bool(true), nil
		case "false":
			return expr.Bool(false), nil
		case "nil":
			return expr.Nil(), nil
		case "if", "then", "else", "let", "in", "fn":
			return nil, p.errf("keyword %q cannot start an expression here", t.text)
		}
		if !p.accept(tkPunct, "(") {
			return expr.V(t.text), nil
		}
		var args []expr.Expr
		for !p.accept(tkPunct, ")") {
			if len(args) > 0 {
				if err := p.expect(tkPunct, ","); err != nil {
					return nil, err
				}
			}
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
		if _, isPrim := LookupPrim(t.text); isPrim {
			return expr.Op(t.text, args...), nil
		}
		return expr.Call(t.text, args...), nil
	default:
		return nil, p.errf("unexpected %s", t)
	}
}
