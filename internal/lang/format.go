package lang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/expr"
)

// Format renders a program back into the concrete syntax accepted by Parse.
// Formatting then parsing yields a semantically identical program (and a
// structurally identical one after a single normalization pass — list
// literals desugar to cons chains), which the tests verify. Functions are
// emitted in sorted-name order.
func Format(p *Program) string {
	var b strings.Builder
	for i, name := range p.Names() {
		d, _ := p.Func(name)
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString("fn ")
		b.WriteString(d.Name)
		b.WriteByte('(')
		b.WriteString(strings.Join(d.Params, ", "))
		b.WriteString(") = ")
		b.WriteString(FormatExpr(d.Body))
		b.WriteByte('\n')
	}
	return b.String()
}

// Operator precedence levels, loosest binding first; mirrors the parser.
const (
	precExpr = iota // if / let bodies
	precOr
	precAnd
	precCmp
	precAdd
	precMul
	precUnary
	precCons
	precAtom
)

// infixOps maps primitive names to (symbol, precedence, variadic-foldable).
var infixOps = map[string]struct {
	sym  string
	prec int
}{
	"or": {"||", precOr}, "and": {"&&", precAnd},
	"==": {"==", precCmp}, "!=": {"!=", precCmp},
	"<": {"<", precCmp}, "<=": {"<=", precCmp},
	">": {">", precCmp}, ">=": {">=", precCmp},
	"+": {"+", precAdd}, "-": {"-", precAdd},
	"*": {"*", precMul}, "/": {"/", precMul}, "%": {"%", precMul},
}

// FormatExpr renders one expression in parseable syntax.
func FormatExpr(e expr.Expr) string {
	return formatPrec(e, precExpr)
}

func formatPrec(e expr.Expr, min int) string {
	s, prec := format1(e)
	if prec < min {
		return "(" + s + ")"
	}
	return s
}

// format1 renders e and reports its natural precedence.
func format1(e expr.Expr) (string, int) {
	switch n := e.(type) {
	case expr.Lit:
		return formatValue(n.V)
	case expr.Var:
		return n.Name, precAtom
	case expr.Hole:
		// Holes never appear in source programs; render them loudly so a
		// formatted residual is recognizable (it will not reparse).
		return fmt.Sprintf("⟨%d⟩", n.ID), precAtom
	case expr.If:
		return fmt.Sprintf("if %s then %s else %s",
			formatPrec(n.Cond, precExpr),
			formatPrec(n.Then, precExpr),
			formatPrec(n.Else, precExpr)), precExpr
	case expr.Let:
		return fmt.Sprintf("let %s = %s in %s",
			n.Name,
			formatPrec(n.Bind, precExpr),
			formatPrec(n.Body, precExpr)), precExpr
	case expr.Apply:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = formatPrec(a, precExpr)
		}
		return n.Fn + "(" + strings.Join(args, ", ") + ")", precAtom
	case expr.Prim:
		return formatPrim(n)
	default:
		return fmt.Sprintf("/*%T*/", e), precAtom
	}
}

func formatPrim(n expr.Prim) (string, int) {
	if op, ok := infixOps[n.Op]; ok && len(n.Args) >= 2 {
		// Left-fold variadic operands: a+b+c reparses identically.
		lmin := op.prec
		if op.prec == precCmp {
			// Comparisons are non-associative in the grammar (one per
			// level), so a comparison operand needs parentheses on the
			// left as well: (a < b) == c, never a < b == c.
			lmin = op.prec + 1
		}
		out := formatPrec(n.Args[0], lmin)
		for _, a := range n.Args[1:] {
			// Right operands need one level tighter for left-associative
			// operators so 10-(3-2) keeps its parentheses.
			out += " " + op.sym + " " + formatPrec(a, op.prec+1)
		}
		return out, op.prec
	}
	switch n.Op {
	case "neg":
		return "-" + formatPrec(n.Args[0], precUnary), precUnary
	case "not":
		return "!" + formatPrec(n.Args[0], precUnary), precUnary
	case "cons":
		// Right associative: h : t.
		return formatPrec(n.Args[0], precCons+1) + " : " + formatPrec(n.Args[1], precCons), precCons
	case "unit":
		return "unit()", precAtom
	default:
		args := make([]string, len(n.Args))
		for i, a := range n.Args {
			args[i] = formatPrec(a, precExpr)
		}
		return n.Op + "(" + strings.Join(args, ", ") + ")", precAtom
	}
}

func formatValue(v expr.Value) (string, int) {
	switch x := v.(type) {
	case expr.VInt:
		if x < 0 {
			return strconv.FormatInt(int64(x), 10), precUnary
		}
		return strconv.FormatInt(int64(x), 10), precAtom
	case expr.VBool:
		return strconv.FormatBool(bool(x)), precAtom
	case expr.VStr:
		return strconv.Quote(string(x)), precAtom
	case expr.VList:
		elems := x.Elems()
		parts := make([]string, len(elems))
		for i, e := range elems {
			s, _ := formatValue(e)
			parts[i] = s
		}
		return "[" + strings.Join(parts, ", ") + "]", precAtom
	case expr.VUnit:
		return "unit()", precAtom
	default:
		return fmt.Sprintf("/*%T*/", v), precAtom
	}
}

// Sorted names helper used by tests comparing programs function-by-function.
func sortedNames(p *Program) []string {
	out := p.Names()
	sort.Strings(out)
	return out
}
