package lang

import (
	"fmt"
	"sync"

	"repro/internal/expr"
)

// This file is the "compiled" evaluator: a loop-free recursive VM over the
// flat node form of compile.go. It preserves the tree-walker's partial-
// reduction contract exactly — Outcome shape, Demands order, Steps counts,
// hole/fill semantics — while touching no maps and no AST on the per-task
// hot path.
//
// Step parity with flatten.go, case by case (the tree-walker charges one
// step per reduce() invocation):
//
//   - fresh evaluation: one step per compiled node visited. A cVar load is
//     one step, exactly like the substituted Lit it replaces (Instantiate
//     and committed Lets substitute values before bodies are walked, so a
//     source Var is always a Lit by the time reduce sees it).
//   - blocked If/Let: the untaken branches / the body are not visited (the
//     tree-walker keeps them unreduced behind the blocked condition/binder),
//     so they cost nothing until the commit pass.
//   - resume re-walk: one step per residual node visited, plus one step per
//     already-reduced value argument (the tree-walker re-reduces residual
//     Lit arguments at one step each), plus one step per hole (filled holes
//     were turned into Lits by the zero-cost FillHoles pre-pass; unfilled
//     holes re-reduce as Holes — one step either way).
//   - commit on resume: a condition/binder that completes evaluates the
//     chosen branch/body fresh — identical to the tree-walker reducing the
//     substituted source subtree, because every enclosing binder's slot has
//     been written by the time the subtree runs.
//
// Residual state is a tree of rnodes that reference compiled nodes by index;
// Resume mutates it in place, which is safe because a task's state is owned
// by that task and never re-read after the pass that consumed it (recovery
// re-executes from retained packets, not from old residuals).

// rkind classifies a residual node.
type rkind uint8

const (
	rHole  rkind = iota // blocked on a child task's answer
	rPrim               // operator with at least one blocked argument
	rIf                 // blocked condition; branches still unevaluated
	rLet                // blocked binder; body still unevaluated
	rApply              // demand site with at least one blocked argument
)

// rv is one argument position of a residual node: either an already-reduced
// value (v non-nil) or a blocked sub-residual.
type rv struct {
	v expr.Value
	r *rnode
}

// rnode is one blocked node of a task's residual.
type rnode struct {
	kind rkind
	id   int   // rHole: the demand id this hole waits for
	node int32 // compiled-node index (rPrim/rIf/rLet/rApply)
	args []rv  // rPrim/rApply: argument list; rIf/rLet: [cond]/[bind]
}

// cstate is the VM's TaskState: the persistent environment plus the blocked
// residual. env slots are written at most once per task (see compile.go), so
// one array serves every pass.
type cstate struct {
	fn   *cfunc
	env  []expr.Value
	root *rnode
}

// vm carries one reduction pass's mutable state, mirroring flattener.
type vm struct {
	fn      *cfunc
	env     []expr.Value
	nextID  *int
	demands []Demand
	steps   int
	// scratch is the argument-value stack for primitive applications: a
	// primitive consumes its argument values synchronously, so they live in
	// one pass-long buffer instead of a fresh slice per node. Demand (Apply)
	// arguments escape the pass inside Demand records and always get their
	// own allocation.
	scratch []expr.Value
}

// scratchPool recycles scratch stacks across passes: a pass returns its
// stack (cleared, so no value outlives its pass) on every exit path. Tasks
// run passes from many goroutines in the live backends, hence a Pool rather
// than a per-evaluator buffer.
var scratchPool = sync.Pool{New: func() any { return new([]expr.Value) }}

func getScratch() []expr.Value {
	return (*scratchPool.Get().(*[]expr.Value))[:0]
}

func putScratch(s []expr.Value) {
	s = s[:cap(s)]
	clear(s)
	s = s[:0]
	scratchPool.Put(&s)
}

// vmEvaluator is the registered "compiled" evaluator. Compilation is
// memoized by program identity: programs are immutable once built, and
// Open/admission may compile the same program from several sessions.
type vmEvaluator struct {
	mu    sync.Mutex
	cache map[*Program]*cprog
}

func newVMEvaluator() *vmEvaluator {
	return &vmEvaluator{cache: map[*Program]*cprog{}}
}

// Name implements Evaluator.
func (*vmEvaluator) Name() string { return "compiled" }

// Compile implements Evaluator.
func (v *vmEvaluator) Compile(p *Program) (EvalProgram, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if cp, ok := v.cache[p]; ok {
		return cp, nil
	}
	cp, err := compileProgram(p)
	if err != nil {
		return nil, err
	}
	v.cache[p] = cp
	return cp, nil
}

// Flatten implements EvalProgram: the first reduction pass of fn(args).
// Entry errors match Instantiate's text exactly.
func (cp *cprog) Flatten(fn string, args []expr.Value, nextID *int) (Outcome, TaskState, error) {
	cf, ok := cp.funcs[fn]
	if !ok {
		return Outcome{}, nil, fmt.Errorf("%w: undefined function %q", ErrEval, fn)
	}
	if len(args) != cf.params {
		return Outcome{}, nil, fmt.Errorf("%w: %q expects %d args, got %d", ErrEval, fn, cf.params, len(args))
	}
	env := make([]expr.Value, cf.nslots)
	copy(env, args)
	m := &vm{fn: cf, env: env, nextID: nextID, scratch: getScratch()}
	v, r, err := m.evalNode(cf.root)
	putScratch(m.scratch)
	if err != nil {
		return Outcome{}, nil, err
	}
	if r == nil {
		return Outcome{Done: true, Value: v, Steps: m.steps}, nil, nil
	}
	return Outcome{Demands: m.demands, Steps: m.steps},
		&cstate{fn: cf, env: env, root: r}, nil
}

// Resume implements EvalProgram: fill holes and re-walk the residual.
func (cp *cprog) Resume(st TaskState, fills map[int]expr.Value, nextID *int) (Outcome, TaskState, error) {
	cs := st.(*cstate)
	m := &vm{fn: cs.fn, env: cs.env, nextID: nextID, scratch: getScratch()}
	v, r, err := m.rewalk(cs.root, fills)
	putScratch(m.scratch)
	if err != nil {
		return Outcome{}, nil, err
	}
	if r == nil {
		return Outcome{Done: true, Value: v, Steps: m.steps}, nil, nil
	}
	cs.root = r
	return Outcome{Demands: m.demands, Steps: m.steps}, cs, nil
}

// RootState implements EvalProgram: a pseudo-task blocked on one bare hole.
// Resuming it costs one step and completes — identical to the tree-walker
// flattening a filled Hole expression.
func (cp *cprog) RootState(holeID int) TaskState {
	return &cstate{root: &rnode{kind: rHole, id: holeID}}
}

// evalNode evaluates compiled node i fresh, returning exactly one of a value
// or a blocked residual. One step per node visited.
func (m *vm) evalNode(i int32) (expr.Value, *rnode, error) {
	n := &m.fn.nodes[i]
	m.steps++
	switch n.op {
	case cLit:
		return m.fn.consts[n.arg], nil, nil
	case cVar:
		if n.arg < 0 || m.env[n.arg] == nil {
			return nil, nil, fmt.Errorf("%w: unbound variable %q at reduction time", ErrEval, n.name)
		}
		return m.env[n.arg], nil, nil
	case cPrim:
		base := len(m.scratch)
		blocked, err := m.evalPrimArgs(n, i)
		if err != nil || blocked != nil {
			m.scratch = m.scratch[:base]
			return nil, blocked, err
		}
		v, err := m.callPrimNode(n, m.scratch[base:])
		m.scratch = m.scratch[:base]
		if err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	case cIf:
		cv, cr, err := m.evalNode(n.kids[0])
		if err != nil {
			return nil, nil, err
		}
		if cr != nil {
			// Condition blocked: branches stay unevaluated (non-strict)
			// until the condition value arrives.
			return nil, &rnode{kind: rIf, node: i, args: []rv{{r: cr}}}, nil
		}
		b, ok := cv.(expr.VBool)
		if !ok {
			return nil, nil, fmt.Errorf("%w: if condition is %s, not bool", ErrEval, expr.TypeName(cv))
		}
		if b {
			return m.evalNode(n.kids[1])
		}
		return m.evalNode(n.kids[2])
	case cLet:
		bv, br, err := m.evalNode(n.kids[0])
		if err != nil {
			return nil, nil, err
		}
		if br != nil {
			// Binder blocked: the body stays unevaluated behind it.
			return nil, &rnode{kind: rLet, node: i, args: []rv{{r: br}}}, nil
		}
		m.env[n.arg] = bv
		return m.evalNode(n.kids[1])
	case cApply:
		vals, blocked, err := m.evalArgs(n, i)
		if err != nil {
			return nil, nil, err
		}
		if blocked != nil {
			return nil, blocked, nil
		}
		return nil, m.demand(n, vals), nil
	default:
		return nil, nil, fmt.Errorf("%w: unknown opcode %d", ErrEval, n.op)
	}
}

// evalArgs evaluates every child of a cApply node in source order — all of
// them, even after one blocks, exactly like reduceArgs. A nil rnode result
// means all arguments reduced to the returned values, which get their own
// allocation because Demand records outlive the pass.
func (m *vm) evalArgs(n *cnode, i int32) ([]expr.Value, *rnode, error) {
	vals := make([]expr.Value, len(n.kids))
	var rvs []rv
	for idx, kid := range n.kids {
		v, r, err := m.evalNode(kid)
		if err != nil {
			return nil, nil, err
		}
		if r != nil {
			if rvs == nil {
				rvs = make([]rv, len(n.kids))
				for j := 0; j < idx; j++ {
					rvs[j] = rv{v: vals[j]}
				}
			}
			rvs[idx] = rv{r: r}
			continue
		}
		vals[idx] = v
		if rvs != nil {
			rvs[idx] = rv{v: v}
		}
	}
	if rvs != nil {
		k := rPrim
		if n.op == cApply {
			k = rApply
		}
		return nil, &rnode{kind: k, node: i, args: rvs}, nil
	}
	return vals, nil, nil
}

// evalPrimArgs is evalArgs for cPrim nodes: reduced values are pushed onto
// the scratch stack (the caller passes them to the primitive and pops them
// before returning — no primitive retains its argument slice). A blocked
// child still evaluates every sibling, with the blocked position holding a
// nil placeholder to keep the stack aligned.
func (m *vm) evalPrimArgs(n *cnode, i int32) (*rnode, error) {
	base := len(m.scratch)
	var rvs []rv
	for idx, kid := range n.kids {
		v, r, err := m.evalNode(kid)
		if err != nil {
			return nil, err
		}
		if r != nil {
			if rvs == nil {
				rvs = make([]rv, len(n.kids))
				for j := 0; j < idx; j++ {
					rvs[j] = rv{v: m.scratch[base+j]}
				}
			}
			rvs[idx] = rv{r: r}
			m.scratch = append(m.scratch, nil)
			continue
		}
		m.scratch = append(m.scratch, v)
		if rvs != nil {
			rvs[idx] = rv{v: v}
		}
	}
	if rvs != nil {
		return &rnode{kind: rPrim, node: i, args: rvs}, nil
	}
	return nil, nil
}

// demand turns a ready application into a child task, exactly like the
// tree-walker's DEMAND_IT case: allocate the next hole id, record the
// demand, and leave a hole in the residual.
func (m *vm) demand(n *cnode, vals []expr.Value) *rnode {
	id := *m.nextID
	*m.nextID = id + 1
	m.demands = append(m.demands, Demand{ID: id, Fn: n.name, Args: vals})
	return &rnode{kind: rHole, id: id}
}

// callPrimNode runs a pre-resolved primitive, with the tree-walker's lazy
// unknown-operator error for nodes compiled against an unregistered op.
func (m *vm) callPrimNode(n *cnode, vals []expr.Value) (expr.Value, error) {
	if n.prim.Fn == nil {
		return nil, fmt.Errorf("%w: unknown primitive %q", ErrEval, n.name)
	}
	return callPrim(n.prim, vals)
}

// rewalk re-reduces a residual after fills arrive, mirroring the
// tree-walker's Resume: FillHoles costs nothing, then the whole residual is
// re-walked — one step per residual node, one step per already-reduced
// value argument, one step per hole (filled or not).
func (m *vm) rewalk(r *rnode, fills map[int]expr.Value) (expr.Value, *rnode, error) {
	m.steps++
	switch r.kind {
	case rHole:
		if v, ok := fills[r.id]; ok {
			return v, nil, nil
		}
		return nil, r, nil
	case rPrim, rApply:
		blocked := false
		for idx := range r.args {
			a := &r.args[idx]
			if a.r == nil {
				// A residual Lit argument: the tree-walker re-reduces it at
				// one step.
				m.steps++
				continue
			}
			v, rr, err := m.rewalk(a.r, fills)
			if err != nil {
				return nil, nil, err
			}
			if rr != nil {
				a.r = rr
				blocked = true
			} else {
				a.v, a.r = v, nil
			}
		}
		if blocked {
			return nil, r, nil
		}
		n := &m.fn.nodes[r.node]
		if r.kind == rApply {
			vals := make([]expr.Value, len(r.args))
			for idx := range r.args {
				vals[idx] = r.args[idx].v
			}
			return nil, m.demand(n, vals), nil
		}
		base := len(m.scratch)
		for idx := range r.args {
			m.scratch = append(m.scratch, r.args[idx].v)
		}
		v, err := m.callPrimNode(n, m.scratch[base:])
		m.scratch = m.scratch[:base]
		if err != nil {
			return nil, nil, err
		}
		return v, nil, nil
	case rIf:
		cv, cr, err := m.rewalk(r.args[0].r, fills)
		if err != nil {
			return nil, nil, err
		}
		if cr != nil {
			r.args[0].r = cr
			return nil, r, nil
		}
		b, ok := cv.(expr.VBool)
		if !ok {
			return nil, nil, fmt.Errorf("%w: if condition is %s, not bool", ErrEval, expr.TypeName(cv))
		}
		n := &m.fn.nodes[r.node]
		if b {
			return m.evalNode(n.kids[1])
		}
		return m.evalNode(n.kids[2])
	case rLet:
		bv, br, err := m.rewalk(r.args[0].r, fills)
		if err != nil {
			return nil, nil, err
		}
		if br != nil {
			r.args[0].r = br
			return nil, r, nil
		}
		n := &m.fn.nodes[r.node]
		m.env[n.arg] = bv
		return m.evalNode(n.kids[1])
	default:
		return nil, nil, fmt.Errorf("%w: unknown residual kind %d", ErrEval, r.kind)
	}
}
