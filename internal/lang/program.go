package lang

import (
	"fmt"
	"sort"

	"repro/internal/expr"
)

// FuncDef is one named function of a program.
type FuncDef struct {
	Name   string
	Params []string
	Body   expr.Expr
}

// Program is a set of mutually recursive first-order function definitions.
// A Program is immutable after Validate succeeds and is shared read-only by
// every simulated processor, the way program code would be resident on every
// node of the machine.
type Program struct {
	funcs map[string]FuncDef
}

// NewProgram builds a program from definitions. Duplicate names are
// rejected.
func NewProgram(defs ...FuncDef) (*Program, error) {
	p := &Program{funcs: make(map[string]FuncDef, len(defs))}
	for _, d := range defs {
		if _, dup := p.funcs[d.Name]; dup {
			return nil, fmt.Errorf("lang: duplicate function %q", d.Name)
		}
		if d.Body == nil {
			return nil, fmt.Errorf("lang: function %q has no body", d.Name)
		}
		p.funcs[d.Name] = d
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is NewProgram that panics on error; intended for the
// statically known standard programs.
func MustProgram(defs ...FuncDef) *Program {
	p, err := NewProgram(defs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Func returns the definition of the named function.
func (p *Program) Func(name string) (FuncDef, bool) {
	d, ok := p.funcs[name]
	return d, ok
}

// Names returns the sorted function names.
func (p *Program) Names() []string {
	out := make([]string, 0, len(p.funcs))
	for n := range p.funcs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Validate checks static sanity: every Apply targets a defined function with
// the right argument count, every Var is bound by a parameter or enclosing
// Let, primitives exist with plausible arity, and no Holes appear in source.
func (p *Program) Validate() error {
	for _, name := range p.Names() {
		d := p.funcs[name]
		bound := map[string]bool{}
		for _, param := range d.Params {
			if bound[param] {
				return fmt.Errorf("lang: function %q: duplicate parameter %q", name, param)
			}
			bound[param] = true
		}
		if err := p.check(name, d.Body, bound); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) check(fn string, e expr.Expr, bound map[string]bool) error {
	switch n := e.(type) {
	case expr.Lit:
		return nil
	case expr.Hole:
		return fmt.Errorf("lang: function %q: hole in source program", fn)
	case expr.Var:
		if !bound[n.Name] {
			return fmt.Errorf("lang: function %q: unbound variable %q", fn, n.Name)
		}
		return nil
	case expr.Prim:
		prim, ok := primitives[n.Op]
		if !ok {
			return fmt.Errorf("lang: function %q: unknown primitive %q", fn, n.Op)
		}
		if prim.Arity >= 0 && len(n.Args) != prim.Arity {
			return fmt.Errorf("lang: function %q: %s expects %d args, got %d",
				fn, n.Op, prim.Arity, len(n.Args))
		}
		for _, a := range n.Args {
			if err := p.check(fn, a, bound); err != nil {
				return err
			}
		}
		return nil
	case expr.If:
		for _, sub := range []expr.Expr{n.Cond, n.Then, n.Else} {
			if err := p.check(fn, sub, bound); err != nil {
				return err
			}
		}
		return nil
	case expr.Let:
		if err := p.check(fn, n.Bind, bound); err != nil {
			return err
		}
		shadowed := bound[n.Name]
		bound[n.Name] = true
		err := p.check(fn, n.Body, bound)
		if !shadowed {
			delete(bound, n.Name)
		}
		return err
	case expr.Apply:
		callee, ok := p.funcs[n.Fn]
		if !ok {
			return fmt.Errorf("lang: function %q: call to undefined function %q", fn, n.Fn)
		}
		if len(n.Args) != len(callee.Params) {
			return fmt.Errorf("lang: function %q: %q expects %d args, got %d",
				fn, n.Fn, len(callee.Params), len(n.Args))
		}
		for _, a := range n.Args {
			if err := p.check(fn, a, bound); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("lang: function %q: unknown node %T", fn, e)
	}
}

// Instantiate returns the body of fn with argument values substituted for
// parameters: the starting expression of a task executing the application
// fn(args). The result is closed (no free variables).
func (p *Program) Instantiate(fn string, args []expr.Value) (expr.Expr, error) {
	d, ok := p.funcs[fn]
	if !ok {
		return nil, fmt.Errorf("%w: undefined function %q", ErrEval, fn)
	}
	if len(args) != len(d.Params) {
		return nil, fmt.Errorf("%w: %q expects %d args, got %d", ErrEval, fn, len(d.Params), len(args))
	}
	return expr.SubstMany(d.Body, d.Params, args), nil
}
