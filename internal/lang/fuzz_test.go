package lang

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/expr"
)

// This file is the differential fuzzer for the bytecode VM: random generated
// programs plus arguments, driven lock-step on both evaluators with the twin
// driver from eval_test.go, which asserts value, Steps, and Demands-order
// equality on every pass of every task — and error-text equality when a
// generated program faults (type errors and empty-list access are reachable
// by construction, and both evaluators must fail identically).

// progGen derives a random-but-valid program deterministically from fuzz
// bytes. Termination is structural: helper i may call only helpers j < i,
// and the one recursive function (fib) is always called through a
// min(abs(·), 8) clamp.
type progGen struct {
	data []byte
	pos  int
}

func (g *progGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *progGen) intn(n int) int { return int(g.next()) % n }

// genOps are the operators the generator draws from; exact arities are
// respected so generated programs always pass Validate (type errors remain
// reachable and are part of what the fuzz compares).
var genOps = []struct {
	op    string
	arity int
}{
	{"+", 2}, {"-", 2}, {"*", 2}, {"min", 2}, {"max", 2},
	{"abs", 1}, {"neg", 1}, {"not", 1},
	{"<", 2}, {"<=", 2}, {"==", 2}, {"and", 2}, {"or", 2},
	{"cons", 2}, {"head", 1}, {"tail", 1}, {"isnil", 1}, {"len", 1},
}

// expr builds one random expression over scope; callees < fi are callable.
func (g *progGen) expr(fi int, helpers []FuncDef, scope []string, depth int) expr.Expr {
	if depth >= 4 {
		return g.leaf(scope)
	}
	switch g.intn(10) {
	case 0, 1:
		return g.leaf(scope)
	case 2, 3:
		o := genOps[g.intn(len(genOps))]
		args := make([]expr.Expr, o.arity)
		for i := range args {
			args[i] = g.expr(fi, helpers, scope, depth+1)
		}
		return expr.Op(o.op, args...)
	case 4:
		// Bias conditions toward comparisons so branches actually run.
		cond := expr.Op("<", g.expr(fi, helpers, scope, depth+1), g.expr(fi, helpers, scope, depth+1))
		return expr.Cond(cond,
			g.expr(fi, helpers, scope, depth+1),
			g.expr(fi, helpers, scope, depth+1))
	case 5:
		name := fmt.Sprintf("v%d", g.intn(3)) // small namespace: shadowing happens
		bind := g.expr(fi, helpers, scope, depth+1)
		body := g.expr(fi, helpers, append(scope, name), depth+1)
		return expr.LetIn(name, bind, body)
	case 6, 7:
		if fi > 0 {
			callee := helpers[g.intn(fi)]
			args := make([]expr.Expr, len(callee.Params))
			for i := range args {
				args[i] = g.expr(fi, helpers, scope, depth+1)
			}
			return expr.Call(callee.Name, args...)
		}
		fallthrough
	case 8:
		// The bounded recursive demand generator: fib of a clamped argument.
		return expr.Call("fib", expr.Op("min",
			expr.Op("abs", g.expr(fi, helpers, scope, depth+1)), expr.Int(8)))
	default:
		return g.leaf(scope)
	}
}

func (g *progGen) leaf(scope []string) expr.Expr {
	if len(scope) > 0 && g.intn(2) == 0 {
		return expr.V(scope[g.intn(len(scope))])
	}
	switch g.intn(6) {
	case 0:
		return expr.Bool(g.intn(2) == 0)
	case 1:
		return expr.Nil()
	default:
		return expr.Int(int64(int8(g.next())))
	}
}

// genProgram assembles fib + up to three acyclic helpers + a main entry.
func genProgram(data []byte) (*Program, bool) {
	g := &progGen{data: data}
	fib := FuncDef{
		Name:   "fib",
		Params: []string{"n"},
		Body: expr.Cond(
			expr.Op("<", expr.V("n"), expr.Int(2)),
			expr.V("n"),
			expr.Op("+",
				expr.Call("fib", expr.Op("-", expr.V("n"), expr.Int(1))),
				expr.Call("fib", expr.Op("-", expr.V("n"), expr.Int(2))),
			),
		),
	}
	paramNames := []string{"a", "b", "c"}
	var helpers []FuncDef
	nh := 1 + g.intn(3)
	for i := 0; i < nh; i++ {
		params := paramNames[:1+g.intn(2)]
		helpers = append(helpers, FuncDef{
			Name:   fmt.Sprintf("h%d", i),
			Params: params,
			Body:   g.expr(i, helpers, params, 0),
		})
	}
	main := FuncDef{
		Name:   "main",
		Params: []string{"x", "y"},
		Body:   g.expr(nh, helpers, []string{"x", "y"}, 0),
	}
	defs := append([]FuncDef{fib}, helpers...)
	defs = append(defs, main)
	prog, err := NewProgram(defs...)
	if err != nil {
		return nil, false // generator slipped outside Validate; skip
	}
	return prog, true
}

// FuzzCompiledVsInterp is the differential fuzz gate for the compiled
// evaluator: whatever program the bytes decode to, the VM must match the
// tree-walker pass for pass — answer, Steps, Demands order, and error text.
func FuzzCompiledVsInterp(f *testing.F) {
	f.Add([]byte{}, int64(3), int64(7))
	f.Add([]byte("\x06\x02\x03\x08\x10\x20\x40\x04\x05\x06"), int64(5), int64(2))
	f.Add([]byte("\x04\x04\x05\x05\x06\x06\x08\x08\x02\x0a\x0c\x21"), int64(12), int64(-4))
	f.Add([]byte("\x02\x08\x03\x09\x01\x07\x06\x05\x04\x03\x02\x01\x00\xff"), int64(0), int64(9))
	f.Add([]byte("\x05\x05\x05\x05\x04\x04\x04\x04\x06\x06\x06\x06\x08\x08\x08\x08"), int64(6), int64(6))
	f.Fuzz(func(t *testing.T, data []byte, x, y int64) {
		prog, ok := genProgram(data)
		if !ok {
			t.Skip("generated program failed validation")
		}
		args := []expr.Value{expr.VInt(x % 32), expr.VInt(y % 32)}
		iEP := mustCompile(t, "interp", prog)
		cEP := mustCompile(t, "compiled", prog)
		budget := 50000
		v, err := twinRun(t, iEP, cEP, "main", args, &budget)
		if err != nil {
			// Either both evaluators faulted identically (asserted inside
			// twinRun) or the case outgrew its budget; both end the case.
			if !errors.Is(err, errBudget) && !errors.Is(err, ErrEval) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		want, err := RefEval(prog, "main", args)
		if err != nil {
			t.Fatalf("machine evaluators completed but RefEval failed: %v", err)
		}
		if !v.Equal(want) {
			t.Fatalf("answer %v != reference %v", v, want)
		}
	})
}
