package lang

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// normalize runs one format→parse pass; after it, formatting is a fixpoint.
func normalize(t *testing.T, p *Program) *Program {
	t.Helper()
	src := Format(p)
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("formatted program does not reparse: %v\n%s", err, src)
	}
	return q
}

// bodiesEqual compares two programs structurally via the expression codec.
func bodiesEqual(t *testing.T, a, b *Program) bool {
	t.Helper()
	na, nb := sortedNames(a), sortedNames(b)
	if len(na) != len(nb) {
		return false
	}
	for i := range na {
		if na[i] != nb[i] {
			return false
		}
		da, _ := a.Func(na[i])
		db, _ := b.Func(nb[i])
		if len(da.Params) != len(db.Params) {
			return false
		}
		for j := range da.Params {
			if da.Params[j] != db.Params[j] {
				return false
			}
		}
		ba := string(expr.EncodeExpr(da.Body))
		bb := string(expr.EncodeExpr(db.Body))
		if ba != bb {
			return false
		}
	}
	return true
}

func TestFormatReparsesToFixpoint(t *testing.T) {
	programs := map[string]*Program{
		"fib":      Fib(),
		"tak":      Tak(),
		"nqueens":  NQueens(),
		"sumrange": SumRange(8),
		"msort":    MergeSort(),
		"binom":    Binomial(),
		"tree":     TreeSum(3),
		"critical": CriticalSections(3, 5),
	}
	for name, p := range programs {
		t.Run(name, func(t *testing.T) {
			once := normalize(t, p)
			twice := normalize(t, once)
			if !bodiesEqual(t, once, twice) {
				t.Fatalf("format/parse is not a fixpoint:\n%s\nvs\n%s", Format(once), Format(twice))
			}
		})
	}
}

func TestFormatPreservesSemantics(t *testing.T) {
	cases := []struct {
		prog *Program
		fn   string
		args []expr.Value
	}{
		{Fib(), "fib", []expr.Value{expr.VInt(11)}},
		{Tak(), "tak", []expr.Value{expr.VInt(7), expr.VInt(4), expr.VInt(2)}},
		{NQueens(), "nqueens", []expr.Value{expr.VInt(5)}},
		{MergeSort(), "msort", []expr.Value{expr.IntList(5, 2, 8, 1)}},
		{Binomial(), "binom", []expr.Value{expr.VInt(9), expr.VInt(4)}},
	}
	for _, tc := range cases {
		want, err := RefEval(tc.prog, tc.fn, tc.args)
		if err != nil {
			t.Fatal(err)
		}
		re := normalize(t, tc.prog)
		got, err := RefEval(re, tc.fn, tc.args)
		if err != nil {
			t.Fatalf("%s reparsed eval: %v", tc.fn, err)
		}
		if !got.Equal(want) {
			t.Errorf("%s: formatted program computes %v, original %v", tc.fn, got, want)
		}
	}
}

func TestFormatParenthesization(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"fn f() = (2 + 3) * 4", 20},
		{"fn f() = 10 - (3 - 2)", 9},
		{"fn f() = 2 * (3 + 4)", 14},
		{"fn f() = -(1 + 2) + 10", 7},
		{"fn f() = (if 1 < 2 then 3 else 4) * 5", 15},
		{"fn f() = (let x = 2 in x) + 1", 3},
	}
	for _, tc := range cases {
		p, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		re := normalize(t, p)
		v, err := RefEval(re, "f", nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.src, err)
		}
		if !v.Equal(expr.VInt(tc.want)) {
			t.Errorf("%s: reparsed = %v, want %d\nformatted: %s",
				tc.src, v, tc.want, Format(p))
		}
	}
}

func TestFormatRendersReadableSource(t *testing.T) {
	src := Format(Fib())
	for _, want := range []string{"fn fib(n)", "if n < 2 then n else", "fib(n - 1) + fib(n - 2)"} {
		if !strings.Contains(src, want) {
			t.Errorf("formatted fib missing %q:\n%s", want, src)
		}
	}
}

func TestFormatExprHole(t *testing.T) {
	// Residual expressions render holes loudly (not reparseable, by design).
	s := FormatExpr(expr.Op("+", expr.Hole{ID: 3}, expr.Int(1)))
	if !strings.Contains(s, "⟨3⟩") {
		t.Errorf("hole rendering: %q", s)
	}
}

// randomParseableExpr generates closed expressions from the subset the
// concrete syntax can express (no holes, no pre-built list literals in
// expression position — lists appear via cons/nil, as the parser produces).
func randomParseableExpr(r *rand.Rand, depth int, scope []string) expr.Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return expr.Int(int64(r.Intn(100)))
		case 1:
			return expr.Bool(r.Intn(2) == 0)
		case 2:
			return expr.Nil()
		default:
			if len(scope) > 0 {
				return expr.V(scope[r.Intn(len(scope))])
			}
			return expr.Int(int64(r.Intn(9)))
		}
	}
	switch r.Intn(8) {
	case 0:
		return expr.Op("+", randomParseableExpr(r, depth-1, scope), randomParseableExpr(r, depth-1, scope))
	case 1:
		return expr.Op("-", randomParseableExpr(r, depth-1, scope), randomParseableExpr(r, depth-1, scope))
	case 2:
		return expr.Op("*", randomParseableExpr(r, depth-1, scope), randomParseableExpr(r, depth-1, scope))
	case 3:
		return expr.Cond(
			expr.Op("<", randomParseableExpr(r, depth-1, scope), randomParseableExpr(r, depth-1, scope)),
			randomParseableExpr(r, depth-1, scope),
			randomParseableExpr(r, depth-1, scope))
	case 4:
		name := "v" + string(rune('a'+len(scope)))
		return expr.LetIn(name,
			randomParseableExpr(r, depth-1, scope),
			randomParseableExpr(r, depth-1, append(scope, name)))
	case 5:
		return expr.Op("cons", randomParseableExpr(r, depth-1, scope), expr.Nil())
	case 6:
		return expr.Op("neg", randomParseableExpr(r, depth-1, scope))
	default:
		return expr.Op("==", randomParseableExpr(r, depth-1, scope), randomParseableExpr(r, depth-1, scope))
	}
}

// TestQuickFormatParseStructuralRoundTrip: formatting any parseable AST and
// reparsing it yields the identical structure — the formatter's
// parenthesization and the parser's precedence rules agree exactly.
func TestQuickFormatParseStructuralRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func() bool {
		body := randomParseableExpr(r, 4, nil)
		src := "fn f() = " + FormatExpr(body)
		p, err := Parse(src)
		if err != nil {
			t.Logf("unparseable: %s (%v)", src, err)
			return false
		}
		d, _ := p.Func("f")
		return string(expr.EncodeExpr(d.Body)) == string(expr.EncodeExpr(body))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1500}); err != nil {
		t.Fatal(err)
	}
}
