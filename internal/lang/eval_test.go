package lang

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/expr"
)

// mustCompile compiles prog under the named evaluator or fails the test.
func mustCompile(t testing.TB, name string, prog *Program) EvalProgram {
	t.Helper()
	ev, err := EvaluatorByName(name)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := ev.Compile(prog)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	return ep
}

// errBudget aborts a lock-step run that outgrew the task budget (fuzz inputs
// can demand large call trees; parity was still checked on every pass run).
var errBudget = errors.New("task budget exhausted")

// twinRun evaluates fn(args) on two compiled programs lock-step, asserting
// after every pass that the outcomes agree in Done, Value, Steps, demand
// order, and the task's demand counter. Each demand is evaluated recursively
// as its own twin task (mirroring the machine's task tree) and filled one
// result at a time — which also exercises the partial-fill Resume paths the
// machine itself never takes.
func twinRun(t testing.TB, iEP, cEP EvalProgram, fn string, args []expr.Value, budget *int) (expr.Value, error) {
	t.Helper()
	*budget--
	if *budget < 0 {
		return nil, errBudget
	}
	var iNext, cNext int
	iOut, iSt, iErr := iEP.Flatten(fn, args, &iNext)
	cOut, cSt, cErr := cEP.Flatten(fn, args, &cNext)
	compareErrs(t, fn, "flatten", iErr, cErr)
	if iErr != nil {
		return nil, iErr
	}
	compareOutcomes(t, fn, "flatten", iOut, cOut, iNext, cNext)
	pending := append([]Demand(nil), iOut.Demands...)
	for !iOut.Done {
		if len(pending) == 0 {
			t.Fatalf("%s: blocked with no pending demands", fn)
		}
		d := pending[0]
		pending = pending[1:]
		v, err := twinRun(t, iEP, cEP, d.Fn, d.Args, budget)
		if err != nil {
			return nil, err // child failed: the machine never resumes the parent
		}
		fills := map[int]expr.Value{d.ID: v}
		iOut, iSt, iErr = iEP.Resume(iSt, fills, &iNext)
		cOut, cSt, cErr = cEP.Resume(cSt, fills, &cNext)
		compareErrs(t, fn, "resume", iErr, cErr)
		if iErr != nil {
			return nil, iErr
		}
		compareOutcomes(t, fn, "resume", iOut, cOut, iNext, cNext)
		pending = append(pending, iOut.Demands...)
	}
	return iOut.Value, nil
}

func compareErrs(t testing.TB, fn, phase string, iErr, cErr error) {
	t.Helper()
	switch {
	case iErr == nil && cErr == nil:
	case iErr == nil || cErr == nil:
		t.Fatalf("%s %s: error divergence: interp=%v compiled=%v", fn, phase, iErr, cErr)
	case iErr.Error() != cErr.Error():
		t.Fatalf("%s %s: error text divergence:\n interp:   %v\n compiled: %v", fn, phase, iErr, cErr)
	}
}

func compareOutcomes(t testing.TB, fn, phase string, iOut, cOut Outcome, iNext, cNext int) {
	t.Helper()
	if iOut.Done != cOut.Done {
		t.Fatalf("%s %s: Done divergence: interp=%v compiled=%v", fn, phase, iOut.Done, cOut.Done)
	}
	if iOut.Steps != cOut.Steps {
		t.Fatalf("%s %s: Steps divergence: interp=%d compiled=%d", fn, phase, iOut.Steps, cOut.Steps)
	}
	if iNext != cNext {
		t.Fatalf("%s %s: demand counter divergence: interp=%d compiled=%d", fn, phase, iNext, cNext)
	}
	if iOut.Done {
		if !iOut.Value.Equal(cOut.Value) {
			t.Fatalf("%s %s: value divergence: interp=%v compiled=%v", fn, phase, iOut.Value, cOut.Value)
		}
		return
	}
	if len(iOut.Demands) != len(cOut.Demands) {
		t.Fatalf("%s %s: demand count divergence: interp=%v compiled=%v", fn, phase, iOut.Demands, cOut.Demands)
	}
	for i := range iOut.Demands {
		di, dc := iOut.Demands[i], cOut.Demands[i]
		if di.ID != dc.ID || di.Fn != dc.Fn || len(di.Args) != len(dc.Args) {
			t.Fatalf("%s %s: demand %d divergence: interp=%+v compiled=%+v", fn, phase, i, di, dc)
		}
		for j := range di.Args {
			if !di.Args[j].Equal(dc.Args[j]) {
				t.Fatalf("%s %s: demand %d arg %d divergence: interp=%v compiled=%v",
					fn, phase, i, j, di.Args[j], dc.Args[j])
			}
		}
	}
}

// twinCase runs one program lock-step on both evaluators and checks the
// final answer against the reference evaluator.
func twinCase(t testing.TB, prog *Program, fn string, args []expr.Value) {
	t.Helper()
	iEP := mustCompile(t, "interp", prog)
	cEP := mustCompile(t, "compiled", prog)
	budget := 200000
	v, err := twinRun(t, iEP, cEP, fn, args, &budget)
	if err != nil {
		if errors.Is(err, errBudget) {
			t.Fatalf("%s: task budget exhausted", fn)
		}
		t.Fatalf("%s: %v", fn, err)
	}
	want, err := RefEval(prog, fn, args)
	if err != nil {
		t.Fatalf("%s: RefEval: %v", fn, err)
	}
	if !v.Equal(want) {
		t.Fatalf("%s: answer %v != reference %v", fn, v, want)
	}
}

// TestCompiledMatchesInterpOnStdPrograms locks the bytecode VM to the
// tree-walker across every standard workload program: identical values,
// steps, and demand sequences on every pass of every task in the tree.
func TestCompiledMatchesInterpOnStdPrograms(t *testing.T) {
	ints := func(vs ...int64) []expr.Value {
		out := make([]expr.Value, len(vs))
		for i, v := range vs {
			out[i] = expr.VInt(v)
		}
		return out
	}
	list := func(vs ...int64) expr.Value {
		l := expr.VList{}
		for i := len(vs) - 1; i >= 0; i-- {
			l = l.Cons(expr.VInt(vs[i]))
		}
		return l
	}
	cases := []struct {
		name string
		prog *Program
		fn   string
		args []expr.Value
	}{
		{"fib", Fib(), "fib", ints(10)},
		{"tak", Tak(), "tak", ints(6, 4, 2)},
		{"sumrange", SumRange(4), "sumrange", ints(0, 40)},
		{"binom", Binomial(), "binom", ints(9, 4)},
		{"nqueens", NQueens(), "nqueens", ints(5)},
		{"msort", MergeSort(), "msort", []expr.Value{list(9, 4, 7, 1, 8, 2, 6, 3, 5)}},
		{"tree", TreeSum(3), "tree", ints(4)},
		{"critical", CriticalSections(4, 3), "main", nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) { twinCase(t, c.prog, c.fn, c.args) })
	}
}

// TestCompiledRootStateMatchesInterp pins the super-root pseudo-task: both
// evaluators resume a bare-hole state in one step to the filled answer, and
// leave it blocked when the fill is missing.
func TestCompiledRootStateMatchesInterp(t *testing.T) {
	prog := Fib()
	for _, name := range []string{"interp", "compiled"} {
		ep := mustCompile(t, name, prog)
		next := 1
		out, st, err := ep.Resume(ep.RootState(0), map[int]expr.Value{0: expr.VInt(42)}, &next)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !out.Done || out.Steps != 1 || !out.Value.Equal(expr.VInt(42)) || st != nil {
			t.Fatalf("%s: filled root resume = %+v (state %v), want Done in 1 step", name, out, st)
		}
		next = 1
		out, st, err = ep.Resume(ep.RootState(0), map[int]expr.Value{}, &next)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out.Done || out.Steps != 1 || len(out.Demands) != 0 || st == nil {
			t.Fatalf("%s: unfilled root resume = %+v, want blocked in 1 step with no demands", name, out)
		}
	}
}

// TestCompiledErrorParity pins runtime error text across evaluators for the
// failures Validate cannot rule out statically.
func TestCompiledErrorParity(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		fn   string
		args []expr.Value
	}{
		{"div-by-zero", MustProgram(FuncDef{Name: "f", Params: []string{"n"},
			Body: expr.Op("/", expr.Int(1), expr.V("n"))}), "f", []expr.Value{expr.VInt(0)}},
		{"if-not-bool", MustProgram(FuncDef{Name: "f", Params: []string{"n"},
			Body: expr.Cond(expr.V("n"), expr.Int(1), expr.Int(2))}), "f", []expr.Value{expr.VInt(0)}},
		{"type-error", MustProgram(FuncDef{Name: "f", Params: []string{"n"},
			Body: expr.Op("+", expr.V("n"), expr.Bool(true))}), "f", []expr.Value{expr.VInt(0)}},
		{"head-of-empty", MustProgram(FuncDef{Name: "f",
			Body: expr.Op("head", expr.Nil())}), "f", nil},
		{"undefined-fn", Fib(), "nope", nil},
		{"bad-arity", Fib(), "fib", nil},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			iEP := mustCompile(t, "interp", c.prog)
			cEP := mustCompile(t, "compiled", c.prog)
			var iNext, cNext int
			_, _, iErr := iEP.Flatten(c.fn, c.args, &iNext)
			_, _, cErr := cEP.Flatten(c.fn, c.args, &cNext)
			if iErr == nil {
				t.Fatalf("expected an error from %s", c.name)
			}
			compareErrs(t, c.fn, "flatten", iErr, cErr)
			if !errors.Is(iErr, ErrEval) || !errors.Is(cErr, ErrEval) {
				t.Fatalf("errors must wrap ErrEval: interp=%v compiled=%v", iErr, cErr)
			}
		})
	}
}

// TestEvaluatorRegistry pins the evaluator vocabulary and its error text to
// the registry, like the backend and scheme registries.
func TestEvaluatorRegistry(t *testing.T) {
	want := []string{"compiled", "interp"}
	got := Evaluators()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Evaluators() = %v, want %v", got, want)
	}
	if DefaultEvaluator != "interp" || !KnownEvaluator(DefaultEvaluator) {
		t.Fatalf("default evaluator %q must be registered", DefaultEvaluator)
	}
	if _, err := EvaluatorByName("nope"); err == nil ||
		err.Error() != `lang: unknown evaluator "nope" (known: compiled, interp)` {
		t.Fatalf("unknown-evaluator error text diverged from the registry: %v", err)
	}
	if EvaluatorHelp() != "compiled|interp" {
		t.Fatalf("EvaluatorHelp() = %q", EvaluatorHelp())
	}
}

// TestCompileMemoized pins the once-per-program contract: compiling the same
// program twice returns the identical compiled form.
func TestCompileMemoized(t *testing.T) {
	ev, err := EvaluatorByName("compiled")
	if err != nil {
		t.Fatal(err)
	}
	prog := Fib()
	a, err := ev.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ev.Compile(prog)
	if err != nil {
		t.Fatal(err)
	}
	if a.(*cprog) != b.(*cprog) {
		t.Fatal("compiled form not memoized by program identity")
	}
}

// TestCountCallsPinned pins the deduplicated CountCalls (now a hook on the
// single reference evaluator) on the canonical call trees.
func TestCountCallsPinned(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		fn   string
		args []expr.Value
		want int64
	}{
		{"fib(10)", Fib(), "fib", []expr.Value{expr.VInt(10)}, 177},
		{"tree2(4)", TreeSum(2), "tree", []expr.Value{expr.VInt(4)}, 31},
		{"tree3(3)", TreeSum(3), "tree", []expr.Value{expr.VInt(3)}, 40},
		{"tak(6,4,2)", Tak(), "tak", []expr.Value{expr.VInt(6), expr.VInt(4), expr.VInt(2)}, 53},
	}
	for _, c := range cases {
		got, err := CountCalls(c.prog, c.fn, c.args)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("CountCalls %s = %d, want %d", c.name, got, c.want)
		}
	}
}
