// Package lang implements the evaluator of the applicative language: a
// strict, first-order functional language whose function applications are
// the task-spawn points of the simulated multiprocessor.
//
// The central operation is Flatten: reduce an expression as far as possible
// using only local information, stopping at function applications, which
// become Demands — the DEMAND_IT points of §4.2 of the paper. A blocked
// flattening yields a residual expression containing Holes; when result
// packets fill the holes, flattening resumes. Because the language is
// determinate (§2.1), re-running a task from its packet always reproduces
// the same demands with the same hole IDs, which is what makes twin tasks
// (§4) and reissued checkpoints (§3) interchangeable with the originals.
package lang

import (
	"errors"
	"fmt"

	"repro/internal/expr"
)

// ErrEval wraps all evaluation errors (type errors, division by zero,
// unknown identifiers). Determinate programs either produce a value or fail
// identically on every re-execution, so evaluation errors are program bugs,
// not recoverable faults.
var ErrEval = errors.New("lang: eval")

// PrimFunc computes a strict primitive from fully evaluated arguments.
type PrimFunc func(args []expr.Value) (expr.Value, error)

// Primitive describes one built-in operator.
type Primitive struct {
	Name  string
	Arity int // -1 means variadic (at least one argument)
	Fn    PrimFunc
}

// primitives is the operator table. All primitives are strict in every
// argument; `if` is the only non-strict form and is handled structurally by
// Flatten.
var primitives = map[string]Primitive{
	"+":      {"+", -1, primAdd},
	"-":      {"-", 2, primSub},
	"*":      {"*", -1, primMul},
	"/":      {"/", 2, primDiv},
	"%":      {"%", 2, primMod},
	"neg":    {"neg", 1, primNeg},
	"abs":    {"abs", 1, primAbs},
	"min":    {"min", 2, primMin},
	"max":    {"max", 2, primMax},
	"<":      {"<", 2, cmp(func(a, b int64) bool { return a < b })},
	"<=":     {"<=", 2, cmp(func(a, b int64) bool { return a <= b })},
	">":      {">", 2, cmp(func(a, b int64) bool { return a > b })},
	">=":     {">=", 2, cmp(func(a, b int64) bool { return a >= b })},
	"==":     {"==", 2, primEq},
	"!=":     {"!=", 2, primNe},
	"and":    {"and", -1, primAnd},
	"or":     {"or", -1, primOr},
	"not":    {"not", 1, primNot},
	"cons":   {"cons", 2, primCons},
	"head":   {"head", 1, primHead},
	"tail":   {"tail", 1, primTail},
	"isnil":  {"isnil", 1, primIsNil},
	"len":    {"len", 1, primLen},
	"append": {"append", 2, primAppend},
	"unit":   {"unit", 0, func([]expr.Value) (expr.Value, error) { return expr.VUnit{}, nil }},
}

// LookupPrim returns the primitive for op, if any.
func LookupPrim(op string) (Primitive, bool) {
	p, ok := primitives[op]
	return p, ok
}

func wantInt(op string, v expr.Value) (int64, error) {
	i, ok := v.(expr.VInt)
	if !ok {
		return 0, fmt.Errorf("%w: %s expects int, got %s", ErrEval, op, expr.TypeName(v))
	}
	return int64(i), nil
}

func wantBool(op string, v expr.Value) (bool, error) {
	b, ok := v.(expr.VBool)
	if !ok {
		return false, fmt.Errorf("%w: %s expects bool, got %s", ErrEval, op, expr.TypeName(v))
	}
	return bool(b), nil
}

func wantList(op string, v expr.Value) (expr.VList, error) {
	l, ok := v.(expr.VList)
	if !ok {
		return expr.VList{}, fmt.Errorf("%w: %s expects list, got %s", ErrEval, op, expr.TypeName(v))
	}
	return l, nil
}

func primAdd(args []expr.Value) (expr.Value, error) {
	var sum int64
	for _, a := range args {
		n, err := wantInt("+", a)
		if err != nil {
			return nil, err
		}
		sum += n
	}
	return expr.VInt(sum), nil
}

func primSub(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("-", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantInt("-", args[1])
	if err != nil {
		return nil, err
	}
	return expr.VInt(a - b), nil
}

func primMul(args []expr.Value) (expr.Value, error) {
	prod := int64(1)
	for _, a := range args {
		n, err := wantInt("*", a)
		if err != nil {
			return nil, err
		}
		prod *= n
	}
	return expr.VInt(prod), nil
}

func primDiv(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("/", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantInt("/", args[1])
	if err != nil {
		return nil, err
	}
	if b == 0 {
		return nil, fmt.Errorf("%w: division by zero", ErrEval)
	}
	return expr.VInt(a / b), nil
}

func primMod(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("%", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantInt("%", args[1])
	if err != nil {
		return nil, err
	}
	if b == 0 {
		return nil, fmt.Errorf("%w: modulo by zero", ErrEval)
	}
	return expr.VInt(a % b), nil
}

func primNeg(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("neg", args[0])
	if err != nil {
		return nil, err
	}
	return expr.VInt(-a), nil
}

func primAbs(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("abs", args[0])
	if err != nil {
		return nil, err
	}
	if a < 0 {
		a = -a
	}
	return expr.VInt(a), nil
}

func primMin(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("min", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantInt("min", args[1])
	if err != nil {
		return nil, err
	}
	return expr.VInt(min(a, b)), nil
}

func primMax(args []expr.Value) (expr.Value, error) {
	a, err := wantInt("max", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantInt("max", args[1])
	if err != nil {
		return nil, err
	}
	return expr.VInt(max(a, b)), nil
}

func cmp(f func(a, b int64) bool) PrimFunc {
	return func(args []expr.Value) (expr.Value, error) {
		a, err := wantInt("cmp", args[0])
		if err != nil {
			return nil, err
		}
		b, err := wantInt("cmp", args[1])
		if err != nil {
			return nil, err
		}
		return expr.VBool(f(a, b)), nil
	}
}

func primEq(args []expr.Value) (expr.Value, error) {
	return expr.VBool(args[0].Equal(args[1])), nil
}

func primNe(args []expr.Value) (expr.Value, error) {
	return expr.VBool(!args[0].Equal(args[1])), nil
}

func primAnd(args []expr.Value) (expr.Value, error) {
	for _, a := range args {
		b, err := wantBool("and", a)
		if err != nil {
			return nil, err
		}
		if !b {
			return expr.VBool(false), nil
		}
	}
	return expr.VBool(true), nil
}

func primOr(args []expr.Value) (expr.Value, error) {
	for _, a := range args {
		b, err := wantBool("or", a)
		if err != nil {
			return nil, err
		}
		if b {
			return expr.VBool(true), nil
		}
	}
	return expr.VBool(false), nil
}

func primNot(args []expr.Value) (expr.Value, error) {
	b, err := wantBool("not", args[0])
	if err != nil {
		return nil, err
	}
	return expr.VBool(!b), nil
}

func primCons(args []expr.Value) (expr.Value, error) {
	l, err := wantList("cons", args[1])
	if err != nil {
		return nil, err
	}
	return l.Cons(args[0]), nil
}

func primHead(args []expr.Value) (expr.Value, error) {
	l, err := wantList("head", args[0])
	if err != nil {
		return nil, err
	}
	if l.IsEmpty() {
		return nil, fmt.Errorf("%w: head of empty list", ErrEval)
	}
	return l.Cell.Head, nil
}

func primTail(args []expr.Value) (expr.Value, error) {
	l, err := wantList("tail", args[0])
	if err != nil {
		return nil, err
	}
	if l.IsEmpty() {
		return nil, fmt.Errorf("%w: tail of empty list", ErrEval)
	}
	return l.Cell.Tail, nil
}

func primIsNil(args []expr.Value) (expr.Value, error) {
	l, err := wantList("isnil", args[0])
	if err != nil {
		return nil, err
	}
	return expr.VBool(l.IsEmpty()), nil
}

func primLen(args []expr.Value) (expr.Value, error) {
	l, err := wantList("len", args[0])
	if err != nil {
		return nil, err
	}
	return expr.VInt(int64(l.Len())), nil
}

func primAppend(args []expr.Value) (expr.Value, error) {
	a, err := wantList("append", args[0])
	if err != nil {
		return nil, err
	}
	b, err := wantList("append", args[1])
	if err != nil {
		return nil, err
	}
	elems := a.Elems()
	out := b
	for i := len(elems) - 1; i >= 0; i-- {
		out = out.Cons(elems[i])
	}
	return out, nil
}

// applyPrim checks arity and runs the primitive.
func applyPrim(op string, args []expr.Value) (expr.Value, error) {
	p, ok := primitives[op]
	if !ok {
		return nil, fmt.Errorf("%w: unknown primitive %q", ErrEval, op)
	}
	return callPrim(p, args)
}

// callPrim checks arity and runs an already-resolved primitive. Both the
// tree-walker (via applyPrim) and the bytecode VM (which resolves the
// operator at compile time) funnel through it, so arity and error text stay
// identical across evaluators — including the dynamic checks Validate does
// not make (a variadic operator applied to zero arguments).
func callPrim(p Primitive, args []expr.Value) (expr.Value, error) {
	if p.Arity >= 0 && len(args) != p.Arity {
		return nil, fmt.Errorf("%w: %s expects %d args, got %d", ErrEval, p.Name, p.Arity, len(args))
	}
	if p.Arity < 0 && len(args) == 0 {
		return nil, fmt.Errorf("%w: %s expects at least one arg", ErrEval, p.Name)
	}
	return p.Fn(args)
}
