package lang

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/expr"
)

// goFib is the plain Go oracle for fib.
func goFib(n int64) int64 {
	if n < 2 {
		return n
	}
	return goFib(n-1) + goFib(n-2)
}

// goTak is the plain Go oracle for tak.
func goTak(x, y, z int64) int64 {
	if y < x {
		return goTak(goTak(x-1, y, z), goTak(y-1, z, x), goTak(z-1, x, y))
	}
	return z
}

// goNQueens is the plain Go oracle for n-queens counting.
func goNQueens(n int) int64 {
	var rec func(row int, cols []int) int64
	rec = func(row int, cols []int) int64 {
		if row == n {
			return 1
		}
		var total int64
		for c := 0; c < n; c++ {
			ok := true
			// cols holds previous rows' columns, oldest first.
			for i, q := range cols {
				dist := row - i
				if q == c || abs64(int64(q-c)) == int64(dist) {
					ok = false
					break
				}
			}
			if ok {
				total += rec(row+1, append(cols, c))
				cols = cols[:row]
			}
		}
		return total
	}
	return rec(0, make([]int, 0, n))
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestRefEvalFib(t *testing.T) {
	p := Fib()
	for n := int64(0); n <= 15; n++ {
		got, err := RefEval(p, "fib", []expr.Value{expr.VInt(n)})
		if err != nil {
			t.Fatalf("fib(%d): %v", n, err)
		}
		if want := expr.VInt(goFib(n)); !got.Equal(want) {
			t.Errorf("fib(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestRefEvalTak(t *testing.T) {
	p := Tak()
	cases := [][3]int64{{6, 4, 2}, {8, 4, 2}, {5, 3, 1}, {2, 4, 6}}
	for _, c := range cases {
		got, err := RefEval(p, "tak", []expr.Value{expr.VInt(c[0]), expr.VInt(c[1]), expr.VInt(c[2])})
		if err != nil {
			t.Fatalf("tak%v: %v", c, err)
		}
		if want := expr.VInt(goTak(c[0], c[1], c[2])); !got.Equal(want) {
			t.Errorf("tak%v = %v, want %v", c, got, want)
		}
	}
}

func TestRefEvalNQueens(t *testing.T) {
	p := NQueens()
	want := []int64{1, 1, 0, 0, 2, 10, 4} // n = 0..6
	for n := 0; n <= 6; n++ {
		got, err := RefEval(p, "nqueens", []expr.Value{expr.VInt(int64(n))})
		if err != nil {
			t.Fatalf("nqueens(%d): %v", n, err)
		}
		if !got.Equal(expr.VInt(want[n])) {
			t.Errorf("nqueens(%d) = %v, want %d (go oracle %d)", n, got, want[n], goNQueens(n))
		}
	}
}

func TestRefEvalSumRange(t *testing.T) {
	p := SumRange(4)
	got, err := RefEval(p, "sumrange", []expr.Value{expr.VInt(0), expr.VInt(100)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(expr.VInt(4950)) {
		t.Fatalf("sumrange(0,100) = %v, want 4950", got)
	}
}

func TestRefEvalBinomial(t *testing.T) {
	p := Binomial()
	got, err := RefEval(p, "binom", []expr.Value{expr.VInt(10), expr.VInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(expr.VInt(210)) {
		t.Fatalf("binom(10,4) = %v, want 210", got)
	}
}

func TestRefEvalMergeSort(t *testing.T) {
	p := MergeSort()
	in := expr.IntList(5, 3, 8, 1, 9, 2, 7, 4, 6, 0)
	got, err := RefEval(p, "msort", []expr.Value{in})
	if err != nil {
		t.Fatal(err)
	}
	want := expr.IntList(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	if !got.Equal(want) {
		t.Fatalf("msort = %v, want %v", got, want)
	}
}

func TestRefEvalTreeSum(t *testing.T) {
	p := TreeSum(3)
	got, err := RefEval(p, "tree", []expr.Value{expr.VInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(expr.VInt(81)) { // 3^4 leaves
		t.Fatalf("tree(4) = %v, want 81", got)
	}
}

func TestCountCalls(t *testing.T) {
	p := TreeSum(2)
	// Perfect binary tree of depth 3: 1+2+4+8 = 15 applications.
	n, err := CountCalls(p, "tree", []expr.Value{expr.VInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("CountCalls = %d, want 15", n)
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		defs []FuncDef
	}{
		{"unbound var", []FuncDef{{Name: "f", Params: []string{"x"}, Body: expr.V("y")}}},
		{"unknown callee", []FuncDef{{Name: "f", Params: nil, Body: expr.Call("g")}}},
		{"bad callee arity", []FuncDef{
			{Name: "f", Params: nil, Body: expr.Call("g", expr.Int(1))},
			{Name: "g", Params: nil, Body: expr.Int(0)},
		}},
		{"unknown prim", []FuncDef{{Name: "f", Params: nil, Body: expr.Op("frob", expr.Int(1))}}},
		{"bad prim arity", []FuncDef{{Name: "f", Params: nil, Body: expr.Op("head")}}},
		{"hole in source", []FuncDef{{Name: "f", Params: nil, Body: expr.Hole{ID: 0}}}},
		{"dup param", []FuncDef{{Name: "f", Params: []string{"x", "x"}, Body: expr.V("x")}}},
		{"dup function", []FuncDef{
			{Name: "f", Params: nil, Body: expr.Int(0)},
			{Name: "f", Params: nil, Body: expr.Int(1)},
		}},
	}
	for _, tc := range cases {
		if _, err := NewProgram(tc.defs...); err == nil {
			t.Errorf("%s: NewProgram accepted invalid program", tc.name)
		}
	}
}

func TestValidateAcceptsShadowingLet(t *testing.T) {
	_, err := NewProgram(FuncDef{
		Name:   "f",
		Params: []string{"x"},
		Body:   expr.LetIn("x", expr.Op("+", expr.V("x"), expr.Int(1)), expr.V("x")),
	})
	if err != nil {
		t.Fatalf("shadowing let rejected: %v", err)
	}
}

func TestFlattenImmediateValue(t *testing.T) {
	p := Fib()
	body, err := p.Instantiate("fib", []expr.Value{expr.VInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	out, err := Flatten(p, body, &next)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Done || !out.Value.Equal(expr.VInt(1)) {
		t.Fatalf("fib(1) flatten: done=%v value=%v", out.Done, out.Value)
	}
	if out.Steps <= 0 {
		t.Error("no steps counted")
	}
	if next != 0 {
		t.Errorf("demand counter advanced to %d for value-only flatten", next)
	}
}

func TestFlattenSpawnsTwoDemands(t *testing.T) {
	p := Fib()
	body, err := p.Instantiate("fib", []expr.Value{expr.VInt(10)})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	out, err := Flatten(p, body, &next)
	if err != nil {
		t.Fatal(err)
	}
	if out.Done {
		t.Fatal("fib(10) flattened to a value without spawning")
	}
	if len(out.Demands) != 2 {
		t.Fatalf("demands = %v, want 2", out.Demands)
	}
	if out.Demands[0].Fn != "fib" || !out.Demands[0].Args[0].Equal(expr.VInt(9)) {
		t.Errorf("demand 0 = %+v", out.Demands[0])
	}
	if out.Demands[1].Fn != "fib" || !out.Demands[1].Args[0].Equal(expr.VInt(8)) {
		t.Errorf("demand 1 = %+v", out.Demands[1])
	}
	if ids := expr.HoleIDs(out.Residual); len(ids) != 2 {
		t.Fatalf("residual holes = %v", ids)
	}
	// Resume with both results: must complete.
	out2, err := Resume(p, out.Residual, map[int]expr.Value{
		out.Demands[0].ID: expr.VInt(34),
		out.Demands[1].ID: expr.VInt(21),
	}, &next)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Done || !out2.Value.Equal(expr.VInt(55)) {
		t.Fatalf("resume: done=%v value=%v", out2.Done, out2.Value)
	}
}

func TestFlattenMultiWaveIf(t *testing.T) {
	// An If whose condition is itself an application: first wave demands
	// only the condition; the chosen branch's applications come in wave two.
	p := MustProgram(
		FuncDef{Name: "cond", Params: []string{"n"}, Body: expr.Op("<", expr.V("n"), expr.Int(5))},
		FuncDef{Name: "leaf", Params: []string{"n"}, Body: expr.Op("*", expr.V("n"), expr.Int(2))},
		FuncDef{Name: "main", Params: []string{"n"}, Body: expr.Cond(
			expr.Call("cond", expr.V("n")),
			expr.Call("leaf", expr.V("n")),
			expr.Int(-1),
		)},
	)
	body, err := p.Instantiate("main", []expr.Value{expr.VInt(3)})
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	w1, err := Flatten(p, body, &next)
	if err != nil {
		t.Fatal(err)
	}
	if w1.Done || len(w1.Demands) != 1 || w1.Demands[0].Fn != "cond" {
		t.Fatalf("wave 1 = %+v", w1)
	}
	w2, err := Resume(p, w1.Residual, map[int]expr.Value{w1.Demands[0].ID: expr.VBool(true)}, &next)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Done || len(w2.Demands) != 1 || w2.Demands[0].Fn != "leaf" {
		t.Fatalf("wave 2 = %+v", w2)
	}
	w3, err := Resume(p, w2.Residual, map[int]expr.Value{w2.Demands[0].ID: expr.VInt(6)}, &next)
	if err != nil {
		t.Fatal(err)
	}
	if !w3.Done || !w3.Value.Equal(expr.VInt(6)) {
		t.Fatalf("wave 3 = %+v", w3)
	}
	// Hole IDs must be distinct across waves.
	if w1.Demands[0].ID == w2.Demands[0].ID {
		t.Error("hole IDs reused across waves")
	}
}

func TestFlattenNestedApplyArguments(t *testing.T) {
	// tak-style: f(g(1), g(2)) — inner applications demand first; the outer
	// application becomes a demand only after both inner results arrive.
	p := MustProgram(
		FuncDef{Name: "g", Params: []string{"x"}, Body: expr.Op("+", expr.V("x"), expr.Int(10))},
		FuncDef{Name: "f", Params: []string{"a", "b"}, Body: expr.Op("*", expr.V("a"), expr.V("b"))},
		FuncDef{Name: "main", Params: nil, Body: expr.Call("f",
			expr.Call("g", expr.Int(1)), expr.Call("g", expr.Int(2)))},
	)
	body, _ := p.Instantiate("main", nil)
	next := 0
	w1, err := Flatten(p, body, &next)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Demands) != 2 || w1.Demands[0].Fn != "g" || w1.Demands[1].Fn != "g" {
		t.Fatalf("wave 1 demands = %+v", w1.Demands)
	}
	w2, err := Resume(p, w1.Residual, map[int]expr.Value{
		w1.Demands[0].ID: expr.VInt(11), w1.Demands[1].ID: expr.VInt(12),
	}, &next)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Demands) != 1 || w2.Demands[0].Fn != "f" {
		t.Fatalf("wave 2 demands = %+v", w2.Demands)
	}
	if !w2.Demands[0].Args[0].Equal(expr.VInt(11)) || !w2.Demands[0].Args[1].Equal(expr.VInt(12)) {
		t.Fatalf("outer demand args = %+v", w2.Demands[0].Args)
	}
}

func TestFlattenPartialResume(t *testing.T) {
	// Filling only one of two holes must not complete the task and must not
	// re-demand the unfilled hole.
	p := Fib()
	body, _ := p.Instantiate("fib", []expr.Value{expr.VInt(10)})
	next := 0
	w1, _ := Flatten(p, body, &next)
	w2, err := Resume(p, w1.Residual, map[int]expr.Value{w1.Demands[0].ID: expr.VInt(34)}, &next)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Done {
		t.Fatal("completed with an unfilled hole")
	}
	if len(w2.Demands) != 0 {
		t.Fatalf("partial resume created demands: %+v", w2.Demands)
	}
	if ids := expr.HoleIDs(w2.Residual); len(ids) != 1 || ids[0] != w1.Demands[1].ID {
		t.Fatalf("residual holes after partial fill = %v", ids)
	}
}

func TestFlattenErrors(t *testing.T) {
	p := MustProgram(
		FuncDef{Name: "div0", Params: nil, Body: expr.Op("/", expr.Int(1), expr.Int(0))},
		FuncDef{Name: "badif", Params: nil, Body: expr.Cond(expr.Int(1), expr.Int(2), expr.Int(3))},
	)
	next := 0
	body, _ := p.Instantiate("div0", nil)
	if _, err := Flatten(p, body, &next); !errors.Is(err, ErrEval) {
		t.Errorf("div0 error = %v", err)
	}
	body, _ = p.Instantiate("badif", nil)
	if _, err := Flatten(p, body, &next); !errors.Is(err, ErrEval) {
		t.Errorf("badif error = %v", err)
	}
}

// driveFlatten runs a full evaluation locally by recursively satisfying
// demands with driveCall, simulating the machine without any distribution.
func driveCall(t *testing.T, p *Program, fn string, args []expr.Value, depth int) expr.Value {
	t.Helper()
	if depth > 10000 {
		t.Fatal("driveCall runaway recursion")
	}
	body, err := p.Instantiate(fn, args)
	if err != nil {
		t.Fatal(err)
	}
	next := 0
	out, err := Flatten(p, body, &next)
	if err != nil {
		t.Fatal(err)
	}
	for !out.Done {
		if len(out.Demands) == 0 {
			t.Fatalf("blocked with no demands: %v", out.Residual)
		}
		fills := map[int]expr.Value{}
		for _, d := range out.Demands {
			fills[d.ID] = driveCall(t, p, d.Fn, d.Args, depth+1)
		}
		out, err = Resume(p, out.Residual, fills, &next)
		if err != nil {
			t.Fatal(err)
		}
	}
	return out.Value
}

func TestFlattenDriverMatchesRefEval(t *testing.T) {
	cases := []struct {
		prog *Program
		fn   string
		args []expr.Value
	}{
		{Fib(), "fib", []expr.Value{expr.VInt(12)}},
		{Tak(), "tak", []expr.Value{expr.VInt(7), expr.VInt(4), expr.VInt(2)}},
		{NQueens(), "nqueens", []expr.Value{expr.VInt(5)}},
		{SumRange(8), "sumrange", []expr.Value{expr.VInt(0), expr.VInt(64)}},
		{MergeSort(), "msort", []expr.Value{expr.IntList(9, 1, 8, 2, 7, 3)}},
		{Binomial(), "binom", []expr.Value{expr.VInt(8), expr.VInt(3)}},
		{TreeSum(2), "tree", []expr.Value{expr.VInt(5)}},
	}
	for _, tc := range cases {
		want, err := RefEval(tc.prog, tc.fn, tc.args)
		if err != nil {
			t.Fatalf("%s ref: %v", tc.fn, err)
		}
		got := driveCall(t, tc.prog, tc.fn, tc.args, 0)
		if !got.Equal(want) {
			t.Errorf("%s: flatten-driver %v, ref %v", tc.fn, got, want)
		}
	}
}

// TestQuickFlattenDeterminism verifies §2.1: different re-executions of the
// same task packet produce identical demand sequences, and results are
// independent of fill order (here: resume with fills split into two steps in
// random order equals resume all at once).
func TestQuickFlattenDeterminism(t *testing.T) {
	p := Fib()
	r := rand.New(rand.NewSource(42))
	f := func() bool {
		n := int64(4 + r.Intn(8))
		body, err := p.Instantiate("fib", []expr.Value{expr.VInt(n)})
		if err != nil {
			return false
		}
		nextA, nextB := 0, 0
		a, errA := Flatten(p, body, &nextA)
		b, errB := Flatten(p, body, &nextB)
		if errA != nil || errB != nil {
			return false
		}
		if len(a.Demands) != len(b.Demands) || a.Steps != b.Steps {
			return false
		}
		for i := range a.Demands {
			if a.Demands[i].ID != b.Demands[i].ID ||
				a.Demands[i].Fn != b.Demands[i].Fn ||
				!a.Demands[i].Args[0].Equal(b.Demands[i].Args[0]) {
				return false
			}
		}
		// Split resume in random order vs batch resume.
		v0 := expr.VInt(goFib(n - 1))
		v1 := expr.VInt(goFib(n - 2))
		batch, err := Resume(p, a.Residual, map[int]expr.Value{
			a.Demands[0].ID: v0, a.Demands[1].ID: v1,
		}, &nextA)
		if err != nil || !batch.Done {
			return false
		}
		first, second := a.Demands[0].ID, a.Demands[1].ID
		fv, sv := expr.Value(v0), expr.Value(v1)
		if r.Intn(2) == 0 {
			first, second = second, first
			fv, sv = sv, fv
		}
		mid, err := Resume(p, b.Residual, map[int]expr.Value{first: fv}, &nextB)
		if err != nil || mid.Done {
			return false
		}
		fin, err := Resume(p, mid.Residual, map[int]expr.Value{second: sv}, &nextB)
		if err != nil || !fin.Done {
			return false
		}
		return fin.Value.Equal(batch.Value) && fin.Value.Equal(expr.VInt(goFib(n)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInstantiateClosesBody(t *testing.T) {
	p := Fib()
	body, err := p.Instantiate("fib", []expr.Value{expr.VInt(30)})
	if err != nil {
		t.Fatal(err)
	}
	if fv := expr.FreeVars(body); len(fv) != 0 {
		t.Fatalf("instantiated body has free vars %v", fv)
	}
	if _, err := p.Instantiate("fib", nil); err == nil {
		t.Error("Instantiate accepted wrong arity")
	}
	if _, err := p.Instantiate("nosuch", nil); err == nil {
		t.Error("Instantiate accepted unknown function")
	}
}

func BenchmarkFlattenFibBody(b *testing.B) {
	p := Fib()
	body, _ := p.Instantiate("fib", []expr.Value{expr.VInt(20)})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		next := 0
		if _, err := Flatten(p, body, &next); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRefEvalFib15(b *testing.B) {
	p := Fib()
	args := []expr.Value{expr.VInt(15)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RefEval(p, "fib", args); err != nil {
			b.Fatal(err)
		}
	}
}
