package workload_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/lang"
	"repro/internal/workload"
)

func TestUniformShape(t *testing.T) {
	s := workload.Uniform(2, 3, 5)
	prog, root, err := workload.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect binary tree of depth 3: 8 leaves, each evaluating to 1.
	v, err := lang.RefEval(prog, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(expr.VInt(8)) {
		t.Fatalf("uniform(2,3) = %v, want 8", v)
	}
	if n := workload.Nodes(s); n != 15 {
		t.Fatalf("workload.Nodes = %d, want 15", n)
	}
}

func TestSkewedShape(t *testing.T) {
	s := workload.Skewed(3, 4, 2)
	prog, root, err := workload.Build(s)
	if err != nil {
		t.Fatal(err)
	}
	v, err := lang.RefEval(prog, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Spine: at each of 4 levels, child 0 recurses (width 3) and children
	// 1,2 are leaves; the deepest child 0 is a leaf. Leaves all evaluate
	// to 1, so the sum is the leaf count.
	vi, ok := v.(expr.VInt)
	if !ok || vi < 4 {
		t.Fatalf("skewed sum = %v", v)
	}
	if workload.Nodes(s) < 8 {
		t.Fatalf("workload.Nodes = %d, too small for a depth-4 spine", workload.Nodes(s))
	}
}

func TestRandomShapeDeterministic(t *testing.T) {
	a := workload.Random(99, 3, 4, 40)
	b := workload.Random(99, 3, 4, 40)
	pa, ra, err := workload.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, rb, err := workload.Build(b)
	if err != nil {
		t.Fatal(err)
	}
	va, err := lang.RefEval(pa, ra, nil)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := lang.RefEval(pb, rb, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !va.Equal(vb) {
		t.Fatalf("same seed, different trees: %v vs %v", va, vb)
	}
	c := workload.Random(100, 3, 4, 40)
	if workload.Nodes(a) == workload.Nodes(c) && func() bool {
		pc, rc, _ := workload.Build(c)
		vc, _ := lang.RefEval(pc, rc, nil)
		return vc.Equal(va)
	}() {
		t.Log("different seeds coincided; acceptable but unusual")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, _, err := workload.Build(workload.Shape{Depth: 0}); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestShapesRunOnMachineWithFaults(t *testing.T) {
	shapes := []workload.Shape{
		workload.Uniform(3, 4, 10),
		workload.Skewed(4, 6, 30),
		workload.Random(7, 3, 5, 50),
	}
	for _, s := range shapes {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			prog, root, err := workload.Build(s)
			if err != nil {
				t.Fatal(err)
			}
			w := core.Workload{Program: prog, Fn: root}
			for _, scheme := range []string{"rollback", "splice"} {
				cfg := core.Config{Procs: 8, Recovery: scheme, Seed: 13}
				base, err := cfg.Verify(w, nil)
				if err != nil {
					t.Fatalf("%s fault-free: %v", scheme, err)
				}
				at := int64(base.Makespan) / 2
				if _, err := cfg.Verify(w, core.CrashPlan(2, at, true)); err != nil {
					t.Fatalf("%s with fault: %v", scheme, err)
				}
			}
		})
	}
}
