// Package workload generates synthetic applicative programs with
// controllable call-tree shapes: uniform, skewed (deep spines with light
// side branches), and seeded-random trees. The paper's analysis depends on
// where in the tree a fault lands relative to the frontier of live tasks;
// irregular shapes exercise recovery paths that the regular standard
// programs (fib, tree) cannot — long dependency chains, lopsided fragments,
// and hot spots for the load balancer.
//
// Shapes are compiled to ordinary lang programs: one function per distinct
// node class, integer arguments selecting the subtree, so the whole
// machinery (stamps, checkpoints, recovery) treats them like any other
// program.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/expr"
	"repro/internal/lang"
)

// Shape describes a synthetic tree workload.
type Shape struct {
	// Name labels the workload in reports.
	Name string
	// Depth is the tree height (root at depth 0).
	Depth int
	// Fanout returns the number of children of an internal node at the
	// given depth with the given node index; leaves return 0 implicitly at
	// Depth.
	Fanout func(depth, index int) int
	// LeafCost returns the chain length a leaf computes (its virtual
	// compute time is ~2× this).
	LeafCost func(index int) int
}

// Uniform builds a regular tree: every internal node has the same fanout,
// every leaf the same cost.
func Uniform(fanout, depth, leafCost int) Shape {
	return Shape{
		Name:     fmt.Sprintf("uniform(f=%d,d=%d)", fanout, depth),
		Depth:    depth,
		Fanout:   func(int, int) int { return fanout },
		LeafCost: func(int) int { return leafCost },
	}
}

// Skewed builds a spine: each level has one heavy child that recurses and
// width-1 light leaves, producing a deep, narrow tree — the worst case for
// rollback (a late fault near the root of the spine discards nearly
// everything).
func Skewed(width, depth, leafCost int) Shape {
	return Shape{
		Name:  fmt.Sprintf("skewed(w=%d,d=%d)", width, depth),
		Depth: depth,
		Fanout: func(d, index int) int {
			// Build encodes child position c of parent i as i*8+c+1, so the
			// spine (position-0 children, plus the root) recurses and the
			// rest are leaves.
			if index == 0 || (index-1)%8 == 0 {
				return width
			}
			return 0
		},
		LeafCost: func(int) int { return leafCost },
	}
}

// Random builds a seeded irregular tree: fanout 0..maxFanout chosen per
// (depth, index) by a deterministic hash of the seed, leaf costs varied
// similarly. The same seed always yields the same program.
func Random(seed int64, maxFanout, depth, maxLeafCost int) Shape {
	return Shape{
		Name:  fmt.Sprintf("random(seed=%d,f<=%d,d=%d)", seed, maxFanout, depth),
		Depth: depth,
		Fanout: func(d, index int) int {
			r := rand.New(rand.NewSource(seed ^ int64(d)*1_000_003 ^ int64(index)*7919))
			// Bias toward at least one child so trees don't die immediately.
			return 1 + r.Intn(maxFanout)
		},
		LeafCost: func(index int) int {
			r := rand.New(rand.NewSource(seed ^ int64(index)*104_729))
			return 1 + r.Intn(maxLeafCost)
		},
	}
}

// Build compiles the shape into a program. The program has one function,
// "node", taking (depth, index); internal nodes sum their children with
// index = index*maxWidth + childPos so node identities stay distinct.
//
// Because lang is first-order with integer arguments, the shape functions
// are evaluated at build time into a dispatch expression: a decision tree
// over depth with per-depth fanout tables would be enormous for irregular
// shapes, so instead Build unrolls the whole tree into one function per
// node class — acceptable for the tree sizes experiments use (≤ a few
// thousand nodes) and faithful to "the program is the evaluation
// structure".
func Build(s Shape) (*lang.Program, string, error) {
	if s.Depth < 1 {
		return nil, "", fmt.Errorf("workload: depth %d < 1", s.Depth)
	}
	var defs []lang.FuncDef
	var mk func(depth, index int) string
	nodes := 0
	mk = func(depth, index int) string {
		nodes++
		name := fmt.Sprintf("n_%d_%d", depth, index)
		fan := 0
		if depth < s.Depth {
			fan = s.Fanout(depth, index)
		}
		if fan <= 0 {
			cost := s.LeafCost(index)
			body := expr.Expr(expr.Int(1))
			for i := 0; i < cost; i++ {
				body = expr.Op("+", expr.Int(0), body)
			}
			defs = append(defs, lang.FuncDef{Name: name, Body: body})
			return name
		}
		children := make([]expr.Expr, fan)
		for c := 0; c < fan; c++ {
			childName := mk(depth+1, index*8+c+1)
			children[c] = expr.Call(childName)
		}
		var body expr.Expr
		if fan == 1 {
			body = expr.Op("+", expr.Int(0), children[0])
		} else {
			body = expr.Op("+", children...)
		}
		defs = append(defs, lang.FuncDef{Name: name, Body: body})
		return name
	}
	root := mk(0, 0)
	if nodes > 100_000 {
		return nil, "", fmt.Errorf("workload: shape %s unrolled to %d nodes", s.Name, nodes)
	}
	prog, err := lang.NewProgram(defs...)
	if err != nil {
		return nil, "", err
	}
	return prog, root, nil
}

// Nodes counts the nodes the shape unrolls to (the task count of a
// fault-free run, excluding the super-root).
func Nodes(s Shape) int {
	var count func(depth, index int) int
	count = func(depth, index int) int {
		fan := 0
		if depth < s.Depth {
			fan = s.Fanout(depth, index)
		}
		n := 1
		for c := 0; c < fan; c++ {
			n += count(depth+1, index*8+c+1)
		}
		return n
	}
	return count(0, 0)
}
