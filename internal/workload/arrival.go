// Open-loop arrival generation: seeded schedules of request admission
// offsets in stream-clock units. A closed-loop driver submits the next
// request when the previous one answers, so it can never push the system
// past its own latency; an open-loop generator admits on a schedule that
// ignores completions — the discipline saturation experiments need to find
// the knee of the load curve. Schedules are pure functions of (spec, seed),
// so every backend and every shard count sees the identical offered load.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// ArrivalKind names an arrival process.
type ArrivalKind string

// The three arrival processes.
const (
	// ArrivePoisson draws i.i.d. exponential inter-arrival gaps with the
	// given rate (requests per stream-clock unit).
	ArrivePoisson ArrivalKind = "poisson"
	// ArriveUniform spaces arrivals a fixed gap apart.
	ArriveUniform ArrivalKind = "uniform"
	// ArriveBurst admits size-request bursts a fixed gap apart.
	ArriveBurst ArrivalKind = "burst"
)

// Arrival is a parsed arrival spec: an open-loop admission process whose
// schedule is a deterministic function of the seed.
type Arrival struct {
	// Spec is the canonical spec string the arrival was parsed from.
	Spec string
	// Kind selects the process.
	Kind ArrivalKind
	// Rate is the Poisson arrival rate in requests per stream-clock unit
	// (poisson only).
	Rate float64
	// Gap is the fixed inter-arrival (uniform) or inter-burst (burst) gap in
	// stream-clock units.
	Gap int64
	// Size is the burst size (burst only).
	Size int
}

// ParseArrival parses an arrival spec:
//
//	arrive:poisson:RATE     exponential gaps at RATE req/unit (RATE > 0)
//	arrive:uniform:GAP      one request every GAP units (GAP > 0)
//	arrive:burst:SIZE:GAP   SIZE requests at once, bursts GAP apart
//
// Every malformed form is an error: wrong field count, non-numeric or
// non-positive parameters, unknown kinds, and trailing garbage all fail
// loudly rather than silently shaping the load.
func ParseArrival(spec string) (Arrival, error) {
	fields := strings.Split(spec, ":")
	if len(fields) < 2 || fields[0] != "arrive" {
		return Arrival{}, fmt.Errorf("workload: arrival spec %q must start with \"arrive:\"", spec)
	}
	a := Arrival{Spec: spec, Kind: ArrivalKind(fields[1])}
	switch a.Kind {
	case ArrivePoisson:
		if len(fields) != 3 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q wants arrive:poisson:RATE", spec)
		}
		rate, err := strconv.ParseFloat(fields[2], 64)
		if err != nil || math.IsNaN(rate) || math.IsInf(rate, 0) {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: bad rate %q", spec, fields[2])
		}
		if rate <= 0 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: rate must be > 0", spec)
		}
		a.Rate = rate
	case ArriveUniform:
		if len(fields) != 3 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q wants arrive:uniform:GAP", spec)
		}
		gap, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: bad gap %q", spec, fields[2])
		}
		if gap <= 0 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: gap must be > 0", spec)
		}
		a.Gap = gap
	case ArriveBurst:
		if len(fields) != 4 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q wants arrive:burst:SIZE:GAP", spec)
		}
		size, err := strconv.Atoi(fields[2])
		if err != nil || size <= 0 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: bad burst size %q", spec, fields[2])
		}
		gap, err := strconv.ParseInt(fields[3], 10, 64)
		if err != nil || gap <= 0 {
			return Arrival{}, fmt.Errorf("workload: arrival spec %q: bad burst gap %q", spec, fields[3])
		}
		a.Size, a.Gap = size, gap
	default:
		return Arrival{}, fmt.Errorf("workload: unknown arrival kind %q in %q (poisson, uniform, burst)", fields[1], spec)
	}
	return a, nil
}

// IsArrivalSpec reports whether spec names an arrival process (parsed by
// ParseArrival) rather than a workload shape.
func IsArrivalSpec(spec string) bool {
	return strings.HasPrefix(spec, "arrive:")
}

// Next returns a stateful generator of arrival offsets for the seed: each
// call yields the next request's admission offset in stream-clock units,
// starting at 0. The sequence is a pure function of (arrival, seed) — the
// determinism contract the admission schedules rely on.
func (a Arrival) Next(seed int64) func() int64 {
	rng := rand.New(rand.NewSource(seed))
	var t int64
	n := 0
	return func() int64 {
		cur := t
		switch a.Kind {
		case ArrivePoisson:
			gap := int64(math.Round(rng.ExpFloat64() / a.Rate))
			if gap < 0 { // overflow guard on absurd draws
				gap = math.MaxInt64 / 4
			}
			t += gap
		case ArriveUniform:
			t += a.Gap
		case ArriveBurst:
			n++
			if n%a.Size == 0 {
				t += a.Gap
			}
		}
		return cur
	}
}

// Schedule materializes the first n arrival offsets for the seed. Offsets
// are non-decreasing and begin at 0: the first request is admitted at the
// stream's start, so a one-request schedule is the degenerate (closed-loop)
// stream regardless of the process.
func (a Arrival) Schedule(n int, seed int64) []int64 {
	next := a.Next(seed)
	out := make([]int64, n)
	for i := range out {
		out[i] = next()
	}
	return out
}
