package workload

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// TestParseArrival is the table-driven parser test: every accepted form,
// every malformed-spec error path.
func TestParseArrival(t *testing.T) {
	cases := []struct {
		spec    string
		want    Arrival
		wantErr string
	}{
		{spec: "arrive:poisson:0.02", want: Arrival{Spec: "arrive:poisson:0.02", Kind: ArrivePoisson, Rate: 0.02}},
		{spec: "arrive:poisson:1", want: Arrival{Spec: "arrive:poisson:1", Kind: ArrivePoisson, Rate: 1}},
		{spec: "arrive:uniform:150", want: Arrival{Spec: "arrive:uniform:150", Kind: ArriveUniform, Gap: 150}},
		{spec: "arrive:burst:4:800", want: Arrival{Spec: "arrive:burst:4:800", Kind: ArriveBurst, Size: 4, Gap: 800}},

		{spec: "poisson:0.02", wantErr: `must start with "arrive:"`},
		{spec: "arrive", wantErr: `must start with "arrive:"`},
		{spec: "arrive:zipf:2", wantErr: "unknown arrival kind"},
		{spec: "arrive:poisson", wantErr: "wants arrive:poisson:RATE"},
		{spec: "arrive:poisson:0.02:9", wantErr: "wants arrive:poisson:RATE"},
		{spec: "arrive:poisson:fast", wantErr: "bad rate"},
		{spec: "arrive:poisson:0", wantErr: "rate must be > 0"},
		{spec: "arrive:poisson:-1", wantErr: "rate must be > 0"},
		{spec: "arrive:poisson:NaN", wantErr: "bad rate"},
		{spec: "arrive:uniform", wantErr: "wants arrive:uniform:GAP"},
		{spec: "arrive:uniform:12.5", wantErr: "bad gap"},
		{spec: "arrive:uniform:0", wantErr: "gap must be > 0"},
		{spec: "arrive:uniform:-5", wantErr: "gap must be > 0"},
		{spec: "arrive:burst:4", wantErr: "wants arrive:burst:SIZE:GAP"},
		{spec: "arrive:burst:4:800:1", wantErr: "wants arrive:burst:SIZE:GAP"},
		{spec: "arrive:burst:0:800", wantErr: "bad burst size"},
		{spec: "arrive:burst:x:800", wantErr: "bad burst size"},
		{spec: "arrive:burst:4:0", wantErr: "bad burst gap"},
		{spec: "arrive:burst:4:y", wantErr: "bad burst gap"},
	}
	for _, c := range cases {
		got, err := ParseArrival(c.spec)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseArrival(%q) error = %v, want containing %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseArrival(%q): %v", c.spec, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseArrival(%q) = %+v, want %+v", c.spec, got, c.want)
		}
	}
	if !IsArrivalSpec("arrive:poisson:1") || IsArrivalSpec("shape:uniform:3,3,4") {
		t.Error("IsArrivalSpec misclassifies")
	}
}

// TestScheduleDeterminism: the same (spec, seed) yields byte-identical
// schedules across repeated generations, and different seeds diverge for
// the stochastic process.
func TestScheduleDeterminism(t *testing.T) {
	specs := []string{"arrive:poisson:0.01", "arrive:uniform:120", "arrive:burst:4:900"}
	for _, spec := range specs {
		a, err := ParseArrival(spec)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(1); seed <= 3; seed++ {
			ref := fmt.Sprint(a.Schedule(64, seed))
			for rep := 0; rep < 3; rep++ {
				if got := fmt.Sprint(a.Schedule(64, seed)); got != ref {
					t.Fatalf("%s seed %d rep %d: schedule diverged\n%s\nvs\n%s", spec, seed, rep, ref, got)
				}
			}
			// The stateful generator and the materialized schedule agree.
			next := a.Next(seed)
			for i, want := range a.Schedule(64, seed) {
				if got := next(); got != want {
					t.Fatalf("%s seed %d: Next()[%d] = %d, want %d", spec, seed, i, got, want)
				}
			}
		}
	}
	a, _ := ParseArrival("arrive:poisson:0.01")
	if fmt.Sprint(a.Schedule(64, 1)) == fmt.Sprint(a.Schedule(64, 2)) {
		t.Error("poisson schedules identical across seeds")
	}
}

// TestScheduleShape: offsets start at 0 and never decrease; uniform and
// burst schedules are exactly their closed forms.
func TestScheduleShape(t *testing.T) {
	for _, spec := range []string{"arrive:poisson:0.05", "arrive:uniform:50", "arrive:burst:3:200"} {
		a, err := ParseArrival(spec)
		if err != nil {
			t.Fatal(err)
		}
		sched := a.Schedule(32, 7)
		if sched[0] != 0 {
			t.Errorf("%s: first arrival at %d, want 0", spec, sched[0])
		}
		for i := 1; i < len(sched); i++ {
			if sched[i] < sched[i-1] {
				t.Errorf("%s: offsets decrease at %d: %v", spec, i, sched)
			}
		}
	}
	u, _ := ParseArrival("arrive:uniform:50")
	for i, at := range u.Schedule(10, 3) {
		if at != int64(i)*50 {
			t.Errorf("uniform offset %d = %d, want %d", i, at, i*50)
		}
	}
	b, _ := ParseArrival("arrive:burst:3:200")
	for i, at := range b.Schedule(12, 3) {
		if want := int64(i/3) * 200; at != want {
			t.Errorf("burst offset %d = %d, want %d", i, at, want)
		}
	}
}

// TestPoissonEmpiricalMean: over ≥3 seeds, the empirical mean inter-arrival
// gap of a long Poisson schedule lands within tolerance of 1/rate.
func TestPoissonEmpiricalMean(t *testing.T) {
	const rate = 0.01 // mean gap 100
	a, err := ParseArrival("arrive:poisson:0.01")
	if err != nil {
		t.Fatal(err)
	}
	const n = 4000
	for seed := int64(1); seed <= 4; seed++ {
		sched := a.Schedule(n, seed)
		mean := float64(sched[n-1]) / float64(n-1)
		if want := 1 / rate; math.Abs(mean-want) > 0.1*want {
			t.Errorf("seed %d: empirical mean gap %.2f outside ±10%% of %.2f", seed, mean, want)
		}
	}
}
