// Package stamp implements the hierarchical level stamps of §3.1 of
// Lin & Keller, "Distributed Recovery in Applicative Systems" (ICPP 1986).
//
// The root task carries a null (empty) stamp; a task at level one bears a
// one-component identification, and tasks at subsequent levels are stamped
// by appending one more component to the stamp of their parent. The paper
// uses the term "digit" generically; we use unsigned 32-bit components so
// fan-out is effectively unbounded.
//
// A stamp is stored as a fixed-width big-endian byte string, which makes
// stamps comparable with ==, usable as map keys, totally ordered by the
// ordinary string comparison (which coincides with component-wise numeric
// comparison), and ancestor checks become prefix tests. Uniqueness is
// guaranteed by the program structure, not by time: stamping is fully
// asynchronous, exactly as §3.1 requires.
package stamp

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// width is the encoded byte width of one stamp component.
const width = 4

// Stamp identifies a task by its path from the root of the call tree.
// The zero value is the root stamp.
type Stamp struct {
	// p holds the big-endian concatenation of the path components.
	p string
}

// Root returns the stamp of the root task (the null level number).
func Root() Stamp { return Stamp{} }

// Child returns the stamp obtained by appending component i, i.e. the stamp
// of this task's i-th spawned child.
func (s Stamp) Child(i uint32) Stamp {
	var b [width]byte
	b[0] = byte(i >> 24)
	b[1] = byte(i >> 16)
	b[2] = byte(i >> 8)
	b[3] = byte(i)
	return Stamp{p: s.p + string(b[:])}
}

// Level reports the depth of the task in the call tree; the root is level 0.
func (s Stamp) Level() int { return len(s.p) / width }

// IsRoot reports whether s is the root stamp.
func (s Stamp) IsRoot() bool { return len(s.p) == 0 }

// Component returns the k-th path component (0-based). It panics if k is out
// of range, mirroring slice indexing semantics.
func (s Stamp) Component(k int) uint32 {
	if k < 0 || k >= s.Level() {
		panic(fmt.Sprintf("stamp: component %d out of range for level %d", k, s.Level()))
	}
	o := k * width
	return uint32(s.p[o])<<24 | uint32(s.p[o+1])<<16 | uint32(s.p[o+2])<<8 | uint32(s.p[o+3])
}

// Last returns the final path component, which is the hole (demand) index
// within the parent task that this task's result fills. It panics on the
// root stamp.
func (s Stamp) Last() uint32 { return s.Component(s.Level() - 1) }

// Parent returns the stamp of the parent task. It panics on the root stamp.
func (s Stamp) Parent() Stamp {
	if s.IsRoot() {
		panic("stamp: root has no parent")
	}
	return Stamp{p: s.p[:len(s.p)-width]}
}

// IsAncestorOf reports whether s is a proper ancestor of t: s lies strictly
// above t on the path from the root. Every stamp is an ancestor of its
// descendants but not of itself.
func (s Stamp) IsAncestorOf(t Stamp) bool {
	return len(s.p) < len(t.p) && strings.HasPrefix(t.p, s.p)
}

// IsDescendantOf reports whether s is a proper descendant of t.
func (s Stamp) IsDescendantOf(t Stamp) bool { return t.IsAncestorOf(s) }

// Related reports whether s and t lie on one root-to-leaf path (equal,
// ancestor, or descendant).
func (s Stamp) Related(t Stamp) bool {
	return s == t || s.IsAncestorOf(t) || t.IsAncestorOf(s)
}

// Compare totally orders stamps: ancestors sort before their descendants and
// siblings sort by component value, i.e. preorder over the call tree.
// It returns -1, 0, or +1.
func (s Stamp) Compare(t Stamp) int { return strings.Compare(s.p, t.p) }

// CommonAncestor returns the deepest stamp that is an ancestor of (or equal
// to) both s and t.
func (s Stamp) CommonAncestor(t Stamp) Stamp {
	n := min(len(s.p), len(t.p))
	k := 0
	for k+width <= n && s.p[k:k+width] == t.p[k:k+width] {
		k += width
	}
	return Stamp{p: s.p[:k]}
}

// String renders the stamp as dot-separated components; the root renders as
// "ε" to keep logs readable.
func (s Stamp) String() string {
	if s.IsRoot() {
		return "ε"
	}
	var b strings.Builder
	for k := 0; k < s.Level(); k++ {
		if k > 0 {
			b.WriteByte('.')
		}
		b.WriteString(strconv.FormatUint(uint64(s.Component(k)), 10))
	}
	return b.String()
}

// Key returns the raw encoded path. It is intended for use as a compact map
// key or wire field; Decode inverts it.
func (s Stamp) Key() string { return s.p }

// EncodedSize returns the number of bytes Key occupies on the wire.
func (s Stamp) EncodedSize() int { return len(s.p) }

// Decode reconstructs a stamp from the raw form produced by Key.
func Decode(raw string) (Stamp, error) {
	if len(raw)%width != 0 {
		return Stamp{}, fmt.Errorf("stamp: raw length %d is not a multiple of %d", len(raw), width)
	}
	return Stamp{p: raw}, nil
}

// Parse parses the textual form produced by String ("ε" or "1.0.2").
func Parse(text string) (Stamp, error) {
	if text == "ε" || text == "" {
		return Root(), nil
	}
	s := Root()
	for _, part := range strings.Split(text, ".") {
		v, err := strconv.ParseUint(part, 10, 32)
		if err != nil {
			return Stamp{}, fmt.Errorf("stamp: bad component %q: %w", part, err)
		}
		s = s.Child(uint32(v))
	}
	return s, nil
}

// Path returns the components of the stamp as a fresh slice.
func (s Stamp) Path() []uint32 {
	out := make([]uint32, s.Level())
	for k := range out {
		out[k] = s.Component(k)
	}
	return out
}

// FromPath builds a stamp from explicit path components.
func FromPath(path ...uint32) Stamp {
	s := Root()
	for _, c := range path {
		s = s.Child(c)
	}
	return s
}

// ErrNotAntichain is reported by VerifyAntichain when two stamps in a set
// are related.
var ErrNotAntichain = errors.New("stamp: set contains related stamps")

// Topmost returns the minimal antichain covering the given stamps: every
// input stamp is either in the result or a descendant of a result element,
// and no result element is an ancestor of another. This is the "topmost
// checkpoint" computation of §3.2: recovery redoes only the most ancient
// ancestors and ignores the rest. The result is sorted in preorder.
func Topmost(stamps []Stamp) []Stamp {
	if len(stamps) == 0 {
		return nil
	}
	sorted := make([]Stamp, len(stamps))
	copy(sorted, stamps)
	sortStamps(sorted)
	out := sorted[:0]
	for _, s := range sorted {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last == s || last.IsAncestorOf(s) {
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// VerifyAntichain returns ErrNotAntichain if any two stamps in the set are
// equal or related, and nil otherwise.
func VerifyAntichain(stamps []Stamp) error {
	sorted := make([]Stamp, len(stamps))
	copy(sorted, stamps)
	sortStamps(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] == sorted[i] || sorted[i-1].IsAncestorOf(sorted[i]) {
			return fmt.Errorf("%w: %v and %v", ErrNotAntichain, sorted[i-1], sorted[i])
		}
	}
	return nil
}

// sortStamps sorts in preorder (lexicographic on the encoded path).
func sortStamps(stamps []Stamp) {
	// Insertion sort is fine for the small sets used per destination entry,
	// but use an explicit shell gap sequence to stay linearithmic on the
	// larger sets produced by failure-time scans.
	n := len(stamps)
	for gap := n / 2; gap > 0; gap /= 2 {
		for i := gap; i < n; i++ {
			for j := i; j >= gap && stamps[j-gap].Compare(stamps[j]) > 0; j -= gap {
				stamps[j-gap], stamps[j] = stamps[j], stamps[j-gap]
			}
		}
	}
}

// Sort sorts stamps in preorder, in place.
func Sort(stamps []Stamp) { sortStamps(stamps) }
