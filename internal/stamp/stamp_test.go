package stamp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	r := Root()
	if !r.IsRoot() {
		t.Fatal("Root() is not root")
	}
	if r.Level() != 0 {
		t.Fatalf("root level = %d, want 0", r.Level())
	}
	if r.String() != "ε" {
		t.Fatalf("root String = %q", r.String())
	}
	if got := (Stamp{}); got != r {
		t.Fatal("zero value differs from Root()")
	}
}

func TestChildAndParent(t *testing.T) {
	s := Root().Child(3).Child(0).Child(7)
	if s.Level() != 3 {
		t.Fatalf("level = %d, want 3", s.Level())
	}
	if s.String() != "3.0.7" {
		t.Fatalf("String = %q, want 3.0.7", s.String())
	}
	if s.Last() != 7 {
		t.Fatalf("Last = %d, want 7", s.Last())
	}
	p := s.Parent()
	if p.String() != "3.0" {
		t.Fatalf("Parent = %q, want 3.0", p.String())
	}
	if got := s.Component(1); got != 0 {
		t.Fatalf("Component(1) = %d, want 0", got)
	}
}

func TestParentOfRootPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Parent of root did not panic")
		}
	}()
	Root().Parent()
}

func TestComponentOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Component out of range did not panic")
		}
	}()
	Root().Child(1).Component(1)
}

func TestAncestry(t *testing.T) {
	root := Root()
	a := root.Child(1)
	b := a.Child(2)
	c := a.Child(3)
	cases := []struct {
		anc, desc Stamp
		want      bool
	}{
		{root, a, true},
		{root, b, true},
		{a, b, true},
		{a, c, true},
		{b, c, false},
		{c, b, false},
		{a, a, false}, // proper ancestry only
		{b, a, false},
		{b, root, false},
	}
	for _, tc := range cases {
		if got := tc.anc.IsAncestorOf(tc.desc); got != tc.want {
			t.Errorf("IsAncestorOf(%v, %v) = %v, want %v", tc.anc, tc.desc, got, tc.want)
		}
		if got := tc.desc.IsDescendantOf(tc.anc); got != tc.want {
			t.Errorf("IsDescendantOf(%v, %v) = %v, want %v", tc.desc, tc.anc, got, tc.want)
		}
	}
	if !a.Related(b) || !b.Related(a) || !a.Related(a) {
		t.Error("Related on one path should hold")
	}
	if b.Related(c) {
		t.Error("siblings must not be related")
	}
}

func TestCompareIsPreorder(t *testing.T) {
	// Ancestors sort before descendants; siblings sort by component.
	a := FromPath(1)
	ab := FromPath(1, 0)
	b := FromPath(2)
	if a.Compare(ab) >= 0 {
		t.Error("ancestor must sort before descendant")
	}
	if ab.Compare(b) >= 0 {
		t.Error("1.0 must sort before 2")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare(x,x) != 0")
	}
	// Component-wise numeric order must be respected even when encodings
	// have multi-byte components.
	lo := FromPath(255)
	hi := FromPath(256)
	if lo.Compare(hi) >= 0 {
		t.Error("255 must sort before 256")
	}
}

func TestCommonAncestor(t *testing.T) {
	a := FromPath(1, 2, 3)
	b := FromPath(1, 2, 4, 5)
	if got := a.CommonAncestor(b); got != FromPath(1, 2) {
		t.Fatalf("CommonAncestor = %v, want 1.2", got)
	}
	if got := a.CommonAncestor(a); got != a {
		t.Fatalf("CommonAncestor(x,x) = %v, want %v", got, a)
	}
	c := FromPath(9)
	if got := a.CommonAncestor(c); !got.IsRoot() {
		t.Fatalf("CommonAncestor across branches = %v, want root", got)
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	cases := []Stamp{
		Root(),
		FromPath(0),
		FromPath(1, 2, 3),
		FromPath(4294967295, 0, 77),
	}
	for _, s := range cases {
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", s.String(), err)
		}
		if back != s {
			t.Errorf("roundtrip %v -> %q -> %v", s, s.String(), back)
		}
	}
	if _, err := Parse("1.x.2"); err == nil {
		t.Error("Parse accepted garbage component")
	}
}

func TestKeyDecodeRoundTrip(t *testing.T) {
	s := FromPath(7, 0, 9, 123456)
	back, err := Decode(s.Key())
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("Decode(Key) = %v, want %v", back, s)
	}
	if _, err := Decode("abc"); err == nil {
		t.Error("Decode accepted misaligned raw input")
	}
	if s.EncodedSize() != 16 {
		t.Errorf("EncodedSize = %d, want 16", s.EncodedSize())
	}
}

func TestPathRoundTrip(t *testing.T) {
	in := []uint32{5, 0, 2, 1 << 30}
	s := FromPath(in...)
	out := s.Path()
	if len(out) != len(in) {
		t.Fatalf("Path length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("Path[%d] = %d, want %d", i, out[i], in[i])
		}
	}
}

func TestTopmost(t *testing.T) {
	b2 := FromPath(0, 1)          // "B2"
	b3 := FromPath(0, 2)          // "B3"
	b5 := FromPath(0, 1, 0, 2, 0) // descendant of B2: the paper's B5 case
	got := Topmost([]Stamp{b5, b3, b2})
	if len(got) != 2 || got[0] != b2 || got[1] != b3 {
		t.Fatalf("Topmost = %v, want [%v %v]", got, b2, b3)
	}
	if err := VerifyAntichain(got); err != nil {
		t.Fatalf("Topmost result is not an antichain: %v", err)
	}
	if Topmost(nil) != nil {
		t.Error("Topmost(nil) should be nil")
	}
	// Duplicates collapse.
	got = Topmost([]Stamp{b2, b2})
	if len(got) != 1 {
		t.Fatalf("Topmost with duplicates = %v", got)
	}
}

func TestVerifyAntichain(t *testing.T) {
	if err := VerifyAntichain([]Stamp{FromPath(1), FromPath(2)}); err != nil {
		t.Fatalf("independent stamps rejected: %v", err)
	}
	if err := VerifyAntichain([]Stamp{FromPath(1), FromPath(1, 0)}); err == nil {
		t.Fatal("related stamps accepted")
	}
	if err := VerifyAntichain([]Stamp{FromPath(1), FromPath(1)}); err == nil {
		t.Fatal("duplicate stamps accepted")
	}
}

// randomStamp builds a stamp with level in [0,6] and small components so
// collisions and ancestor relations actually occur under quick.
func randomStamp(r *rand.Rand) Stamp {
	s := Root()
	for lvl := r.Intn(7); lvl > 0; lvl-- {
		s = s.Child(uint32(r.Intn(4)))
	}
	return s
}

func TestQuickAncestorIffPrefixPath(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a, b := randomStamp(r), randomStamp(r)
		pa, pb := a.Path(), b.Path()
		isPrefix := len(pa) < len(pb)
		if isPrefix {
			for i := range pa {
				if pa[i] != pb[i] {
					isPrefix = false
					break
				}
			}
		}
		return a.IsAncestorOf(b) == isPrefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareMatchesPathOrder(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	less := func(a, b []uint32) int {
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		switch {
		case len(a) < len(b):
			return -1
		case len(a) > len(b):
			return 1
		}
		return 0
	}
	f := func() bool {
		a, b := randomStamp(r), randomStamp(r)
		return a.Compare(b) == less(a.Path(), b.Path())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTopmostCovers(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		n := r.Intn(12)
		in := make([]Stamp, n)
		for i := range in {
			in[i] = randomStamp(r)
		}
		top := Topmost(in)
		if VerifyAntichain(top) != nil {
			return false
		}
		// Every input is in top or a descendant of an element of top.
		for _, s := range in {
			covered := false
			for _, a := range top {
				if a == s || a.IsAncestorOf(s) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSortIsTotalOrder(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	f := func() bool {
		n := 1 + r.Intn(20)
		in := make([]Stamp, n)
		for i := range in {
			in[i] = randomStamp(r)
		}
		Sort(in)
		for i := 1; i < n; i++ {
			if in[i-1].Compare(in[i]) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChild(b *testing.B) {
	s := FromPath(1, 2, 3, 4, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Child(uint32(i))
	}
}

func BenchmarkIsAncestorOf(b *testing.B) {
	a := FromPath(1, 2, 3)
	d := FromPath(1, 2, 3, 4, 5, 6, 7, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !a.IsAncestorOf(d) {
			b.Fatal("unexpected")
		}
	}
}

func BenchmarkTopmost64(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	in := make([]Stamp, 64)
	for i := range in {
		in[i] = randomStamp(r)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Topmost(in)
	}
}
